"""Tests for the Monte-Carlo sweep engine (repro.core.engine)."""

import time

import numpy as np
import pytest

from repro.core.engine import (
    SweepEngine,
    SweepOutcome,
    SweepPointError,
    parameter_grid,
)
from repro.core.store import DiskStore, MemoryStore
from repro.utils.rng import ensure_seed_sequence, spawn_generators


def _draw(params, rng):
    """Toy stochastic worker: one uniform draw scaled by a parameter."""
    return params["scale"] * float(rng.random())


def _failing(params, rng):
    raise RuntimeError("boom")


def _failing_at_three(params, rng):
    if params["scale"] == 3.0:
        raise ValueError("bad point")
    return _draw(params, rng)


class TestParameterGrid:
    def test_cartesian_product_order(self):
        grid = parameter_grid(n=(25, 40), window=(3, 5))
        assert grid == [
            {"n": 25, "window": 3}, {"n": 25, "window": 5},
            {"n": 40, "window": 3}, {"n": 40, "window": 5},
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            parameter_grid()
        with pytest.raises(ValueError):
            parameter_grid(n=())


class TestSeeding:
    def test_integer_seed_is_reproducible(self):
        engine = SweepEngine(cache=False)
        points = parameter_grid(scale=(1.0, 2.0, 3.0))
        first = engine.sweep_values(_draw, points, rng=42)
        second = engine.sweep_values(_draw, points, rng=42)
        assert first == second

    def test_points_are_independent_of_grid_shape(self):
        # Child generators are spawned by point index, so a leading
        # sub-grid reproduces the full grid's leading values.
        engine = SweepEngine(cache=False)
        full = engine.sweep_values(_draw, parameter_grid(scale=(1.0, 2.0)),
                                   rng=7)
        sub = engine.sweep_values(_draw, parameter_grid(scale=(1.0,)), rng=7)
        assert sub[0] == full[0]

    def test_default_rng_draws_fresh_entropy(self):
        engine = SweepEngine(cache=False)
        points = parameter_grid(scale=(1.0,))
        assert engine.sweep_values(_draw, points) != \
            engine.sweep_values(_draw, points)

    def test_spawn_key_recorded(self):
        engine = SweepEngine()
        outcomes = engine.sweep(_draw, parameter_grid(scale=(1.0, 2.0)),
                                rng=3)
        assert [outcome.spawn_key for outcome in outcomes] == [(0,), (1,)]
        assert all(isinstance(outcome, SweepOutcome)
                   for outcome in outcomes)

    def test_generator_input_accepted(self):
        engine = SweepEngine(cache=False)
        generator = np.random.default_rng(11)
        values = engine.sweep_values(_draw, parameter_grid(scale=(1.0,)),
                                     rng=generator)
        assert 0.0 <= values[0] <= 1.0


class TestCaching:
    def test_same_seed_hits_cache(self):
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0, 2.0))
        first = engine.sweep(_draw, points, rng=5)
        second = engine.sweep(_draw, points, rng=5)
        assert [outcome.from_cache for outcome in first] == [False, False]
        assert [outcome.from_cache for outcome in second] == [True, True]
        assert [o.value for o in first] == [o.value for o in second]
        info = engine.cache_info()
        assert info["entries"] == 2
        assert info["hits"] == 2
        assert info["misses"] == 2

    def test_different_seeds_do_not_collide(self):
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0,))
        first = engine.sweep(_draw, points, rng=1)
        second = engine.sweep(_draw, points, rng=2)
        assert not second[0].from_cache
        assert first[0].value != second[0].value

    def test_explicit_key_shares_cache_between_workers(self):
        engine = SweepEngine()
        points = parameter_grid(scale=(2.0,))

        def other_worker(params, rng):  # same signature, same key
            return _draw(params, rng)

        first = engine.sweep(_draw, points, rng=4, key="shared")
        second = engine.sweep(other_worker, points, rng=4, key="shared")
        assert second[0].from_cache
        assert first[0].value == second[0].value

    def test_unseeded_sweeps_do_not_grow_the_cache(self):
        # With rng=None (or a generator) the root entropy is fresh every
        # call, so entries could never be hit again — the engine must not
        # store them at all.
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0, 2.0))
        engine.sweep(_draw, points)
        engine.sweep(_draw, points, rng=np.random.default_rng(3))
        assert engine.cache_info()["entries"] == 0
        assert engine.cache_info()["hits"] == 0

    def test_outcome_params_are_a_defensive_copy(self):
        # Mutating an outcome's params must corrupt neither the caller's
        # grid nor the engine's cached results on a re-run.
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0, 2.0))
        first = engine.sweep(_draw, points, rng=9)
        first[0].params["scale"] = 999.0
        first[1].params.clear()
        assert points == [{"scale": 1.0}, {"scale": 2.0}]
        second = engine.sweep(_draw, points, rng=9)
        assert [outcome.from_cache for outcome in second] == [True, True]
        assert [outcome.params for outcome in second] == points
        assert [o.value for o in second] == \
            SweepEngine(cache=False).sweep_values(_draw, points, rng=9)

    def test_outcome_to_dict_is_json_serializable(self):
        import json

        engine = SweepEngine()

        def numpy_worker(params, rng):
            return {"scale": np.float64(params["scale"]),
                    "draws": np.arange(2)}

        outcome = engine.sweep(numpy_worker, parameter_grid(scale=(2.0,)),
                               rng=1)[0]
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["params"] == {"scale": 2.0}
        assert payload["value"] == {"scale": 2.0, "draws": [0, 1]}
        assert payload["spawn_key"] == [0]
        assert payload["from_cache"] is False

    def test_cache_can_be_disabled_and_cleared(self):
        engine = SweepEngine(cache=False)
        points = parameter_grid(scale=(1.0,))
        engine.sweep(_draw, points, rng=6)
        assert engine.cache_info()["entries"] == 0
        enabled = SweepEngine()
        enabled.sweep(_draw, points, rng=6)
        assert enabled.cache_info()["entries"] == 1
        enabled.clear_cache()
        assert enabled.cache_info()["entries"] == 0


class TestSharedStore:
    def test_equivalent_workers_share_results_across_engines(self):
        # Content-addressed keys: a different engine with the same store
        # and the same (module-level) worker serves from the store — no
        # shared Python objects required.
        store = MemoryStore()
        points = parameter_grid(scale=(1.0, 2.0))
        first = SweepEngine(store=store).sweep(_draw, points, rng=5)
        second = SweepEngine(store=store).sweep(_draw, points, rng=5)
        assert [outcome.from_cache for outcome in second] == [True, True]
        assert [o.value for o in first] == [o.value for o in second]

    def test_disk_store_roundtrip_between_engines(self, tmp_path):
        # run -> fresh engine on a reopened store -> all points served.
        root = str(tmp_path / "store")
        points = parameter_grid(scale=(1.0, 2.0, 3.0))
        cold = SweepEngine(store=DiskStore(root)).sweep_values(
            _draw, points, rng=5)
        warm_engine = SweepEngine(store=DiskStore(root))
        warm = warm_engine.sweep(_draw, points, rng=5)
        assert [outcome.from_cache for outcome in warm] == [True] * 3
        assert [outcome.value for outcome in warm] == cold
        assert warm_engine.cache_info() == {"entries": 3, "hits": 3,
                                            "misses": 0}

    def test_unseeded_sweeps_never_touch_the_store(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        SweepEngine(store=store).sweep(_draw, parameter_grid(scale=(1.0,)))
        assert len(store) == 0

    def test_points_are_stored_as_they_complete(self):
        # Durability for interrupted runs: by the time a later point
        # fails, every earlier completed point is already in the store.
        store = MemoryStore()
        engine = SweepEngine(store=store)
        points = parameter_grid(scale=(1.0, 2.0, 3.0))
        with pytest.raises(SweepPointError) as excinfo:
            engine.sweep(_failing_at_three, points, rng=5)
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert len(store) == 2
        resumed = engine.sweep(_failing_at_three, points[:2], rng=5)
        assert [outcome.from_cache for outcome in resumed] == [True, True]

    def test_unrepresentable_params_run_uncached(self):
        # Param values canonical JSON cannot express must not crash the
        # sweep — the point simply runs without a store key.
        class Mode:
            pass

        store = MemoryStore()
        engine = SweepEngine(store=store)

        def worker(params, rng):
            return 1.0

        outcomes = engine.sweep(worker, [{"mode": Mode()}], rng=0)
        assert outcomes[0].value == 1.0
        assert not outcomes[0].from_cache
        assert len(store) == 0

    def test_disk_store_values_have_identical_shape_cold_and_warm(
            self, tmp_path):
        # The store round-trip (tuples -> lists, int dict keys -> str)
        # must apply to the COLD run too, so code consuming
        # outcome.value behaves the same on both runs.
        def worker(params, rng):
            return {"curve": (1.0, 2.0), "windows": {9: 75.0, 10: 100.0}}

        root = str(tmp_path / "store")
        cold = SweepEngine(store=DiskStore(root)).sweep(
            worker, [{"x": 1}], rng=0)
        warm = SweepEngine(store=DiskStore(root)).sweep(
            worker, [{"x": 1}], rng=0)
        assert warm[0].from_cache
        assert cold[0].value == warm[0].value == \
            {"curve": [1.0, 2.0], "windows": {"9": 75.0, "10": 100.0}}

    def test_entry_vanishing_mid_sweep_recomputes_instead_of_crashing(
            self):
        # Race with `cache clear` from another process: a point judged
        # warm at planning time whose entry is gone by read time must be
        # recomputed, not abort the sweep with KeyError.
        class VanishingStore(MemoryStore):
            def __contains__(self, key):
                return True  # claims every point is already stored

        store = VanishingStore()
        outcomes = SweepEngine(store=store).sweep(
            _draw, parameter_grid(scale=(1.0, 2.0)), rng=5)
        reference = SweepEngine(cache=False).sweep_values(
            _draw, parameter_grid(scale=(1.0, 2.0)), rng=5)
        assert [outcome.value for outcome in outcomes] == reference
        assert [outcome.from_cache for outcome in outcomes] == [False,
                                                                False]
        assert len(store) == 2  # recomputed points were stored after all

    def test_unstorable_value_degrades_to_uncached(self, tmp_path):
        # A value the DiskStore cannot serialize must not read as a
        # worker failure — the point runs and simply stays uncached.
        def worker(params, rng):
            return {"mixed": 1, 2: "keys"}  # unsortable for json.dumps

        store = DiskStore(str(tmp_path / "store"))
        outcomes = SweepEngine(store=store).sweep(worker, [{"x": 1}],
                                                  rng=0)
        assert outcomes[0].value == {"mixed": 1, 2: "keys"}
        assert len(store) == 0


class TestParallelism:
    def test_process_pool_matches_serial(self):
        # Workers must be picklable for the process path; module-level
        # functions are.  Results must be identical to the serial path
        # because seeding is per point, not per worker process.
        points = parameter_grid(scale=(1.0, 2.0, 3.0, 4.0))
        serial = SweepEngine().sweep_values(_draw, points, rng=8)
        parallel = SweepEngine(n_workers=2).sweep_values(_draw, points,
                                                         rng=8)
        assert serial == parallel

    def test_worker_errors_propagate(self):
        with pytest.raises(RuntimeError):
            SweepEngine().sweep(_failing, parameter_grid(scale=(1.0,)))

    def test_pool_failure_names_the_failing_point(self):
        # The pool path must not hang collecting remaining futures: the
        # first exception cancels outstanding work and surfaces as a
        # SweepPointError carrying the failing params.
        points = parameter_grid(scale=(1.0, 2.0, 3.0, 4.0))
        engine = SweepEngine(n_workers=2, cache=False)
        with pytest.raises(SweepPointError) as excinfo:
            engine.sweep(_failing_at_three, points, rng=8)
        assert excinfo.value.params == {"scale": 3.0}
        assert "'scale': 3.0" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_pool_engine_wraps_even_a_single_pending_point(self):
        # Regression: n_workers > 1 with one remaining point must honour
        # the same SweepPointError contract as a full pool run.
        store = MemoryStore()
        engine = SweepEngine(n_workers=2, store=store)
        good = parameter_grid(scale=(1.0, 2.0))
        engine.sweep(_failing_at_three, good, rng=8)  # warm the store
        with pytest.raises(SweepPointError) as excinfo:
            engine.sweep(_failing_at_three,
                         parameter_grid(scale=(1.0, 2.0, 3.0)), rng=8)
        assert excinfo.value.params == {"scale": 3.0}

    def test_pool_serves_warm_points_from_disk_store(self, tmp_path):
        root = str(tmp_path / "store")
        points = parameter_grid(scale=(1.0, 2.0, 3.0, 4.0))
        cold = SweepEngine(n_workers=2, store=DiskStore(root)).sweep_values(
            _draw, points, rng=8)
        warm = SweepEngine(n_workers=2, store=DiskStore(root)).sweep(
            _draw, points, rng=8)
        assert [outcome.from_cache for outcome in warm] == [True] * 4
        assert [outcome.value for outcome in warm] == cold
        assert cold == SweepEngine(cache=False).sweep_values(_draw, points,
                                                             rng=8)

    def test_n_workers_validation(self):
        with pytest.raises(ValueError):
            SweepEngine(n_workers=0)


def _slow_or_fail(params, rng):
    if params["scale"] == 1.0:
        time.sleep(30.0)
        return 0.0
    raise ValueError("early failure")


class TestWarmDispatch:
    def test_early_failure_is_not_masked_by_a_slow_point(self):
        # Regression: a failure in a pool-dispatched sweep used to
        # surface only after every in-flight point drained.  With one
        # 30 s point and one immediately-failing point, the
        # SweepPointError must arrive promptly and name the failure.
        engine = SweepEngine(n_workers=2, cache=False)
        start = time.monotonic()
        with pytest.raises(SweepPointError) as excinfo:
            engine.sweep(_slow_or_fail,
                         parameter_grid(scale=(1.0, 2.0)), rng=8)
        assert time.monotonic() - start < 15.0
        assert excinfo.value.params == {"scale": 2.0}
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_repeat_sweeps_reuse_one_pool_generation(self):
        points = parameter_grid(scale=(1.0, 2.0, 3.0, 4.0))
        with SweepEngine(n_workers=2, cache=False) as engine:
            first = engine.sweep_values(_draw, points, rng=8)
            after_first = engine.dispatch_stats()
            second = engine.sweep_values(_draw, points, rng=8)
            after_second = engine.dispatch_stats()
        # Warm dispatch must be invisible in the results: both sweeps
        # (and a fresh engine) agree bit-for-bit.
        assert first == second
        assert first == SweepEngine(cache=False).sweep_values(_draw,
                                                              points, rng=8)
        # ... and visible in the stats: one worker broadcast, one
        # executor generation, with the second sweep all hits.
        assert after_first["generation"] == 1
        assert after_first["broadcasts"] == 1
        assert after_second["generation"] == 1
        assert after_second["broadcast_hits"] \
            == after_first["broadcast_hits"] + len(points)

    def test_close_then_sweep_recreates_the_pool(self):
        points = parameter_grid(scale=(1.0, 2.0))
        engine = SweepEngine(n_workers=2, cache=False)
        try:
            first = engine.sweep_values(_draw, points, rng=8)
            engine.close()
            second = engine.sweep_values(_draw, points, rng=8)
            assert first == second
            assert engine.dispatch_stats()["generation"] == 2
        finally:
            engine.close()

    def test_serial_engine_has_no_dispatch_stats(self):
        engine = SweepEngine()
        engine.sweep_values(_draw, parameter_grid(scale=(1.0,)), rng=8)
        assert engine.dispatch_stats() is None


class TestRngHelpers:
    def test_ensure_seed_sequence_types(self):
        assert ensure_seed_sequence(3).entropy == 3
        assert isinstance(ensure_seed_sequence(None),
                          np.random.SeedSequence)
        from_generator = ensure_seed_sequence(np.random.default_rng(0))
        assert isinstance(from_generator, np.random.SeedSequence)
        with pytest.raises(TypeError):
            ensure_seed_sequence("seed")

    def test_spawn_generators(self):
        first, second = spawn_generators(12, 2)
        assert first.random() != second.random()
        again_first, _ = spawn_generators(12, 2)
        # Same root seed -> same children.
        assert again_first.random() == np.random.default_rng(
            np.random.SeedSequence(12).spawn(2)[0]).random()
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
