"""Tests for the Monte-Carlo sweep engine (repro.core.engine)."""

import numpy as np
import pytest

from repro.core.engine import SweepEngine, SweepOutcome, parameter_grid
from repro.utils.rng import ensure_seed_sequence, spawn_generators


def _draw(params, rng):
    """Toy stochastic worker: one uniform draw scaled by a parameter."""
    return params["scale"] * float(rng.random())


def _failing(params, rng):
    raise RuntimeError("boom")


class TestParameterGrid:
    def test_cartesian_product_order(self):
        grid = parameter_grid(n=(25, 40), window=(3, 5))
        assert grid == [
            {"n": 25, "window": 3}, {"n": 25, "window": 5},
            {"n": 40, "window": 3}, {"n": 40, "window": 5},
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            parameter_grid()
        with pytest.raises(ValueError):
            parameter_grid(n=())


class TestSeeding:
    def test_integer_seed_is_reproducible(self):
        engine = SweepEngine(cache=False)
        points = parameter_grid(scale=(1.0, 2.0, 3.0))
        first = engine.sweep_values(_draw, points, rng=42)
        second = engine.sweep_values(_draw, points, rng=42)
        assert first == second

    def test_points_are_independent_of_grid_shape(self):
        # Child generators are spawned by point index, so a leading
        # sub-grid reproduces the full grid's leading values.
        engine = SweepEngine(cache=False)
        full = engine.sweep_values(_draw, parameter_grid(scale=(1.0, 2.0)),
                                   rng=7)
        sub = engine.sweep_values(_draw, parameter_grid(scale=(1.0,)), rng=7)
        assert sub[0] == full[0]

    def test_default_rng_draws_fresh_entropy(self):
        engine = SweepEngine(cache=False)
        points = parameter_grid(scale=(1.0,))
        assert engine.sweep_values(_draw, points) != \
            engine.sweep_values(_draw, points)

    def test_spawn_key_recorded(self):
        engine = SweepEngine()
        outcomes = engine.sweep(_draw, parameter_grid(scale=(1.0, 2.0)),
                                rng=3)
        assert [outcome.spawn_key for outcome in outcomes] == [(0,), (1,)]
        assert all(isinstance(outcome, SweepOutcome)
                   for outcome in outcomes)

    def test_generator_input_accepted(self):
        engine = SweepEngine(cache=False)
        generator = np.random.default_rng(11)
        values = engine.sweep_values(_draw, parameter_grid(scale=(1.0,)),
                                     rng=generator)
        assert 0.0 <= values[0] <= 1.0


class TestCaching:
    def test_same_seed_hits_cache(self):
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0, 2.0))
        first = engine.sweep(_draw, points, rng=5)
        second = engine.sweep(_draw, points, rng=5)
        assert [outcome.from_cache for outcome in first] == [False, False]
        assert [outcome.from_cache for outcome in second] == [True, True]
        assert [o.value for o in first] == [o.value for o in second]
        info = engine.cache_info()
        assert info["entries"] == 2
        assert info["hits"] == 2
        assert info["misses"] == 2

    def test_different_seeds_do_not_collide(self):
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0,))
        first = engine.sweep(_draw, points, rng=1)
        second = engine.sweep(_draw, points, rng=2)
        assert not second[0].from_cache
        assert first[0].value != second[0].value

    def test_explicit_key_shares_cache_between_workers(self):
        engine = SweepEngine()
        points = parameter_grid(scale=(2.0,))

        def other_worker(params, rng):  # same signature, same key
            return _draw(params, rng)

        first = engine.sweep(_draw, points, rng=4, key="shared")
        second = engine.sweep(other_worker, points, rng=4, key="shared")
        assert second[0].from_cache
        assert first[0].value == second[0].value

    def test_unseeded_sweeps_do_not_grow_the_cache(self):
        # With rng=None (or a generator) the root entropy is fresh every
        # call, so entries could never be hit again — the engine must not
        # store them at all.
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0, 2.0))
        engine.sweep(_draw, points)
        engine.sweep(_draw, points, rng=np.random.default_rng(3))
        assert engine.cache_info()["entries"] == 0
        assert engine.cache_info()["hits"] == 0

    def test_outcome_params_are_a_defensive_copy(self):
        # Mutating an outcome's params must corrupt neither the caller's
        # grid nor the engine's cached results on a re-run.
        engine = SweepEngine()
        points = parameter_grid(scale=(1.0, 2.0))
        first = engine.sweep(_draw, points, rng=9)
        first[0].params["scale"] = 999.0
        first[1].params.clear()
        assert points == [{"scale": 1.0}, {"scale": 2.0}]
        second = engine.sweep(_draw, points, rng=9)
        assert [outcome.from_cache for outcome in second] == [True, True]
        assert [outcome.params for outcome in second] == points
        assert [o.value for o in second] == \
            SweepEngine(cache=False).sweep_values(_draw, points, rng=9)

    def test_outcome_to_dict_is_json_serializable(self):
        import json

        engine = SweepEngine()

        def numpy_worker(params, rng):
            return {"scale": np.float64(params["scale"]),
                    "draws": np.arange(2)}

        outcome = engine.sweep(numpy_worker, parameter_grid(scale=(2.0,)),
                               rng=1)[0]
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["params"] == {"scale": 2.0}
        assert payload["value"] == {"scale": 2.0, "draws": [0, 1]}
        assert payload["spawn_key"] == [0]
        assert payload["from_cache"] is False

    def test_cache_can_be_disabled_and_cleared(self):
        engine = SweepEngine(cache=False)
        points = parameter_grid(scale=(1.0,))
        engine.sweep(_draw, points, rng=6)
        assert engine.cache_info()["entries"] == 0
        enabled = SweepEngine()
        enabled.sweep(_draw, points, rng=6)
        assert enabled.cache_info()["entries"] == 1
        enabled.clear_cache()
        assert enabled.cache_info()["entries"] == 0


class TestParallelism:
    def test_process_pool_matches_serial(self):
        # Workers must be picklable for the process path; module-level
        # functions are.  Results must be identical to the serial path
        # because seeding is per point, not per worker process.
        points = parameter_grid(scale=(1.0, 2.0, 3.0, 4.0))
        serial = SweepEngine().sweep_values(_draw, points, rng=8)
        parallel = SweepEngine(n_workers=2).sweep_values(_draw, points,
                                                         rng=8)
        assert serial == parallel

    def test_worker_errors_propagate(self):
        with pytest.raises(RuntimeError):
            SweepEngine().sweep(_failing, parameter_grid(scale=(1.0,)))

    def test_n_workers_validation(self):
        with pytest.raises(ValueError):
            SweepEngine(n_workers=0)


class TestRngHelpers:
    def test_ensure_seed_sequence_types(self):
        assert ensure_seed_sequence(3).entropy == 3
        assert isinstance(ensure_seed_sequence(None),
                          np.random.SeedSequence)
        from_generator = ensure_seed_sequence(np.random.default_rng(0))
        assert isinstance(from_generator, np.random.SeedSequence)
        with pytest.raises(TypeError):
            ensure_seed_sequence("seed")

    def test_spawn_generators(self):
        first, second = spawn_generators(12, 2)
        assert first.random() != second.random()
        again_first, _ = spawn_generators(12, 2)
        # Same root seed -> same children.
        assert again_first.random() == np.random.default_rng(
            np.random.SeedSequence(12).spawn(2)[0]).random()
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
