"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.channel import LinkBudget
from repro.cli import main
from repro.scenarios import scenario_names


class TestListAndDescribe:
    def test_list_names_every_scenario(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        listed = [line.split()[0] for line in output.splitlines() if line]
        assert set(listed) == set(scenario_names())
        assert len(listed) >= 15

    def test_describe_emits_json(self, capsys):
        assert main(["describe", "fig10"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "fig10"
        assert payload["specs"]["coding"]["spec_type"] == "CodingSpec"
        assert payload["n_points"] > 0

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["describe", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestRun:
    def test_run_table1_json_matches_link_budget(self, tmp_path, capsys):
        path = tmp_path / "table1.json"
        assert main(["run", "table1", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        table = {point["params"]["parameter"]: point["value"]
                 for point in payload["points"]}
        assert table == LinkBudget().table_entries()
        assert payload["seed"] == 0  # the CLI defaults to --seed 0
        assert "table1" in capsys.readouterr().out

    def test_run_is_byte_identical_at_fixed_seed(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(["run", "fig7", "--seed", "3", "--quiet",
                     "--json", str(first)]) == 0
        assert main(["run", "fig7", "--seed", "3", "--quiet",
                     "--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_run_with_set_override(self, tmp_path):
        path = tmp_path / "fig4.json"
        assert main(["run", "fig4", "--quiet", "--json", str(path),
                     "--set", "channel.rx_noise_figure_db=7.0"]) == 0
        payload = json.loads(path.read_text())
        assert payload["specs"]["channel"]["rx_noise_figure_db"] == 7.0

    def test_set_parses_booleans_case_insensitively(self, tmp_path):
        # The raw string "false" would be truthy; the CLI must map
        # true/false/none keywords to real Python values.
        path = tmp_path / "sweep.json"
        assert main(["run", "tx-power-sweep", "--quiet", "--json", str(path),
                     "--set", "channel.include_butler_mismatch=false"]) == 0
        payload = json.loads(path.read_text())
        assert payload["specs"]["channel"]["include_butler_mismatch"] is False
        # 5 dB Butler penalty gone relative to the scenario default.
        default = tmp_path / "default.json"
        assert main(["run", "tx-power-sweep", "--quiet",
                     "--json", str(default)]) == 0
        snr = payload["points"][0]["value"]["snr_db"]
        default_snr = json.loads(
            default.read_text())["points"][0]["value"]["snr_db"]
        assert snr == pytest.approx(default_snr + 5.0)

    def test_bad_override_fails_cleanly(self, capsys):
        assert main(["run", "fig4", "--quiet",
                     "--set", "noc.bogus=1"]) == 2
        assert "override" in capsys.readouterr().err

    def test_malformed_set_raises_system_exit(self):
        with pytest.raises(SystemExit):
            main(["run", "fig4", "--set", "no-equals-sign"])


class TestModuleEntryPoint:
    def test_python_dash_m_repro_list(self):
        # End to end through the real interpreter: `python -m repro list`.
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env, check=True)
        listed = [line.split()[0]
                  for line in completed.stdout.splitlines() if line]
        assert set(listed) == set(scenario_names())
