"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.channel import LinkBudget
from repro.cli import main
from repro.scenarios import scenario_names


class TestListAndDescribe:
    def test_list_names_every_scenario(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        listed = [line.split()[0] for line in output.splitlines() if line]
        assert set(listed) == set(scenario_names())
        assert len(listed) >= 15

    def test_list_only_glob_filters(self, capsys):
        assert main(["list", "--only", "noc-*"]) == 0
        listed = [line.split()[0]
                  for line in capsys.readouterr().out.splitlines() if line]
        assert listed
        assert all(name.startswith("noc-") for name in listed)
        assert "noc-lossy-link-sweep" in listed

    def test_list_only_no_match_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["list", "--only", "zzz-*"])

    def test_describe_emits_json(self, capsys):
        assert main(["describe", "fig10"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "fig10"
        assert payload["specs"]["coding"]["spec_type"] == "CodingSpec"
        assert payload["n_points"] > 0

    def test_describe_cross_layer_noc_scenario(self, capsys):
        assert main(["describe", "noc-lossy-link-sweep"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "noc-lossy-link-sweep"
        assert payload["specs"]["noc"]["spec_type"] == "NocSpec"
        assert payload["specs"]["coding"]["spec_type"] == "CodingSpec"
        assert "ebn0_db" in payload["axes"]

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["describe", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestRun:
    def test_run_table1_json_matches_link_budget(self, tmp_path, capsys):
        path = tmp_path / "table1.json"
        assert main(["run", "table1", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        table = {point["params"]["parameter"]: point["value"]
                 for point in payload["points"]}
        assert table == LinkBudget().table_entries()
        assert payload["seed"] == 0  # the CLI defaults to --seed 0
        assert "table1" in capsys.readouterr().out

    def test_run_is_byte_identical_at_fixed_seed(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(["run", "fig7", "--seed", "3", "--quiet",
                     "--json", str(first)]) == 0
        assert main(["run", "fig7", "--seed", "3", "--quiet",
                     "--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_run_with_set_override(self, tmp_path):
        path = tmp_path / "fig4.json"
        assert main(["run", "fig4", "--quiet", "--json", str(path),
                     "--set", "channel.rx_noise_figure_db=7.0"]) == 0
        payload = json.loads(path.read_text())
        assert payload["specs"]["channel"]["rx_noise_figure_db"] == 7.0

    def test_set_parses_booleans_case_insensitively(self, tmp_path):
        # The raw string "false" would be truthy; the CLI must map
        # true/false/none keywords to real Python values.
        path = tmp_path / "sweep.json"
        assert main(["run", "tx-power-sweep", "--quiet", "--json", str(path),
                     "--set", "channel.include_butler_mismatch=false"]) == 0
        payload = json.loads(path.read_text())
        assert payload["specs"]["channel"]["include_butler_mismatch"] is False
        # 5 dB Butler penalty gone relative to the scenario default.
        default = tmp_path / "default.json"
        assert main(["run", "tx-power-sweep", "--quiet",
                     "--json", str(default)]) == 0
        snr = payload["points"][0]["value"]["snr_db"]
        default_snr = json.loads(
            default.read_text())["points"][0]["value"]["snr_db"]
        assert snr == pytest.approx(default_snr + 5.0)

    def test_bad_override_fails_cleanly(self, capsys):
        assert main(["run", "fig4", "--quiet",
                     "--set", "noc.bogus=1"]) == 2
        assert "override" in capsys.readouterr().err

    def test_malformed_set_raises_system_exit(self):
        with pytest.raises(SystemExit):
            main(["run", "fig4", "--set", "no-equals-sign"])

    def test_duplicate_set_key_raises_system_exit(self):
        # A later duplicate --set must not silently win.
        with pytest.raises(SystemExit, match="more than once") as excinfo:
            main(["run", "fig4", "--quiet",
                  "--set", "channel.rx_noise_figure_db=7",
                  "--set", "channel.rx_noise_figure_db=9"])
        assert "channel.rx_noise_figure_db" in str(excinfo.value)

    def test_run_with_store_serves_warm_rerun(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", "fig7", "--quiet", "--store", store]) == 0
        capsys.readouterr()
        assert main(["run", "fig7", "--quiet", "--store", store,
                     "--json", str(tmp_path / "warm.json")]) == 0
        # All four fig7 points served from the DiskStore on the re-run.
        from repro.core.store import DiskStore

        assert DiskStore(store).info()["entries"] == 4


class TestWorkersArgument:
    def test_auto_resolves_to_cpu_count(self):
        from repro.cli import _workers_argument

        assert _workers_argument("auto") == (os.cpu_count() or 1)
        assert _workers_argument("AUTO") == (os.cpu_count() or 1)
        assert _workers_argument("3") == 3

    def test_run_accepts_workers_auto(self, capsys):
        assert main(["run", "fig4", "--quiet", "--workers", "auto"]) == 0
        capsys.readouterr()

    def test_non_integer_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig4", "--quiet", "--workers", "many"])
        assert excinfo.value.code == 2
        assert "positive integer or 'auto'" in capsys.readouterr().err

    def test_zero_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-all", "--quiet", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "at least 1" in capsys.readouterr().err


class TestRunAllAndCache:
    def test_run_all_only_glob(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run-all", "--only", "table1", "--store", store]) == 0
        out = capsys.readouterr().out
        assert ("campaign: 1 scenarios · 9 points · hits 0 · shared 0 · "
                "misses 9") in out

    def test_run_all_warm_rerun_is_all_hits(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        json_cold = str(tmp_path / "cold.json")
        json_warm = str(tmp_path / "warm.json")
        assert main(["run-all", "--only", "fig[47]", "--store", store,
                     "--quiet", "--json", json_cold]) == 0
        capsys.readouterr()
        assert main(["run-all", "--only", "fig[47]", "--store", store,
                     "--resume", "--quiet", "--json", json_warm]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert "hits 12 · shared 0 · misses 0" in out
        with open(json_cold, "rb") as cold, open(json_warm, "rb") as warm:
            assert cold.read() == warm.read()

    def test_run_all_resume_requires_store(self):
        with pytest.raises(SystemExit, match="--resume requires --store"):
            main(["run-all", "--only", "table1", "--resume"])

    def test_run_all_resume_rejects_missing_store_dir(self, tmp_path):
        # A mistyped --store path must fail early, not silently
        # recompute the whole campaign from an empty store.
        with pytest.raises(SystemExit, match="does not exist"):
            main(["run-all", "--only", "table1", "--resume",
                  "--store", str(tmp_path / "no-such-store")])

    def test_run_all_unknown_glob_fails_cleanly(self, capsys):
        assert main(["run-all", "--only", "fig99*"]) == 2
        assert "no scenario matches" in capsys.readouterr().err

    def test_cache_info_and_clear(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run-all", "--only", "table1", "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--store", store]) == 0
        lines = dict(line.split(" ", 1)
                     for line in capsys.readouterr().out.splitlines())
        assert lines["backend"] == "disk"
        assert lines["entries"] == "9"
        assert int(lines["total_bytes"]) > 0
        assert main(["cache", "clear", "--store", store]) == 0
        assert "cleared 9 entries" in capsys.readouterr().out
        assert main(["cache", "info", "--store", store]) == 0
        assert "entries 0" in capsys.readouterr().out


class TestModuleEntryPoint:
    @staticmethod
    def _module_env():
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        return env

    def test_python_dash_m_repro_list(self):
        # End to end through the real interpreter: `python -m repro list`.
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=self._module_env(),
            check=True)
        listed = [line.split()[0]
                  for line in completed.stdout.splitlines() if line]
        assert set(listed) == set(scenario_names())

    def test_disk_store_serves_a_genuinely_new_process(self, tmp_path):
        # The full content-addressing claim: run in one interpreter,
        # re-run in another — every point comes from the DiskStore.
        env = self._module_env()
        store = str(tmp_path / "store")
        command = [sys.executable, "-m", "repro", "run-all",
                   "--only", "table1", "--store", store, "--quiet"]
        cold = subprocess.run(command, capture_output=True, text=True,
                              env=env, check=True)
        assert "misses 9" in cold.stdout
        warm = subprocess.run(command, capture_output=True, text=True,
                              env=env, check=True)
        assert "hits 9 · shared 0 · misses 0" in warm.stdout


class TestMachineReadableListDescribe:
    def test_list_json_is_a_parseable_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in catalog] == scenario_names()
        assert all(set(entry) == {"name", "artifact", "summary"}
                   for entry in catalog)

    def test_list_json_respects_only_filter(self, capsys):
        assert main(["list", "--only", "noc-*", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert catalog
        assert all(entry["name"].startswith("noc-") for entry in catalog)

    def test_describe_json_is_compact_canonical(self, capsys):
        assert main(["describe", "fig7", "--json"]) == 0
        output = capsys.readouterr().out
        assert output.count("\n") == 1            # one line + newline
        payload = json.loads(output)
        assert payload["scenario"] == "fig7"
        assert payload["n_points"] == 4
        # Canonical form: re-encoding reproduces the emitted bytes.
        assert output.strip() == json.dumps(payload, sort_keys=True,
                                            separators=(",", ":"))

    def test_describe_json_applies_overrides(self, capsys):
        assert main(["describe", "fig4", "--json",
                     "--set", "channel.rx_noise_figure_db=7.0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["specs"]["channel"]["rx_noise_figure_db"] == 7.0


class TestServiceVerbs:
    UNREACHABLE = "http://127.0.0.1:9"

    def test_submit_unreachable_service_exits_2(self, capsys):
        assert main(["submit", "fig7", "--url", self.UNREACHABLE,
                     "--timeout", "1"]) == 2
        assert "cannot reach service" in capsys.readouterr().err

    def test_status_unreachable_service_exits_2(self, capsys):
        assert main(["status", "job-000001", "--url", self.UNREACHABLE,
                     "--timeout", "1"]) == 2
        assert "cannot reach service" in capsys.readouterr().err

    def test_fetch_unreachable_service_exits_2(self, capsys):
        assert main(["fetch", "0" * 64, "--url", self.UNREACHABLE,
                     "--timeout", "1"]) == 2
        assert "cannot reach service" in capsys.readouterr().err

    def test_submit_and_status_against_a_live_service(self, capsys):
        from repro.core.store import MemoryStore
        from repro.service import serve

        server = serve(store=MemoryStore(), port=0, n_workers=2,
                       processes=False)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert main(["submit", "fig7", "--url", server.url,
                         "--wait"]) == 0
            output = capsys.readouterr().out
            assert "computed 4" in output
            job_id = output.split()[1]
            assert main(["status", job_id, "--url", server.url]) == 0
            descriptor = json.loads(capsys.readouterr().out)
            assert descriptor["status"] == "done"
            assert descriptor["computed"] == 4
            # Warm resubmission through the CLI: all hits, 0 computed.
            assert main(["submit", "fig7", "--url", server.url,
                         "--wait"]) == 0
            assert "hits 4" in capsys.readouterr().out
            key = descriptor["points"][0]["store_key"]
            assert main(["fetch", key, "--url", server.url]) == 0
            assert json.loads(capsys.readouterr().out) \
                == descriptor["points"][0]["value"]
        finally:
            server.stop()
            server.server_close()
