"""Unit tests for repro.coding.protograph and repro.coding.lifting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.lifting import lift_protograph, matrix_girth_at_least_six
from repro.coding.protograph import (
    EdgeSpreading,
    PAPER_BLOCK_PROTOGRAPH,
    Protograph,
    coupled_protograph,
    paper_edge_spreading,
    terminated_rate,
)


class TestProtograph:
    def test_paper_block_protograph(self):
        assert PAPER_BLOCK_PROTOGRAPH.n_checks == 1
        assert PAPER_BLOCK_PROTOGRAPH.n_variables == 2
        assert PAPER_BLOCK_PROTOGRAPH.design_rate == pytest.approx(0.5)
        assert PAPER_BLOCK_PROTOGRAPH.is_regular()

    def test_degrees_of_paper_protograph(self):
        # (4,8)-regular: variable degree 4, check degree 8.
        np.testing.assert_array_equal(
            PAPER_BLOCK_PROTOGRAPH.variable_degrees(), [4, 4])
        np.testing.assert_array_equal(
            PAPER_BLOCK_PROTOGRAPH.check_degrees(), [8])

    def test_edge_count(self):
        assert PAPER_BLOCK_PROTOGRAPH.n_edges == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            Protograph(np.array([[-1, 2]]))
        with pytest.raises(ValueError):
            Protograph(np.array([[1, 0]]))  # isolated variable node
        with pytest.raises(ValueError):
            Protograph(np.zeros((0, 0)))

    def test_irregular_protograph(self):
        protograph = Protograph(np.array([[1, 2, 1], [2, 1, 1]]))
        assert not protograph.is_regular()
        assert protograph.design_rate == pytest.approx(1.0 / 3.0)


class TestEdgeSpreading:
    def test_paper_spreading_satisfies_eq2(self):
        spreading = paper_edge_spreading()
        assert spreading.memory == 2
        spreading.validate_against(PAPER_BLOCK_PROTOGRAPH)
        np.testing.assert_array_equal(spreading.base.base_matrix,
                                      PAPER_BLOCK_PROTOGRAPH.base_matrix)

    def test_invalid_spreading_detected(self):
        bad = EdgeSpreading((np.array([[2, 2]]), np.array([[1, 2]])))
        with pytest.raises(ValueError):
            bad.validate_against(PAPER_BLOCK_PROTOGRAPH)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EdgeSpreading((np.array([[2, 2]]), np.array([[1, 1, 1]])))

    def test_empty_spreading_rejected(self):
        with pytest.raises(ValueError):
            EdgeSpreading(())

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            EdgeSpreading((np.array([[2, 2]]), np.array([[-1, 1]])))


class TestCoupledProtograph:
    def test_shape_matches_eq3(self):
        # B_[1,L] has (L + mcc) * nc rows and L * nv columns.
        spreading = paper_edge_spreading()
        for length in (5, 10, 20):
            coupled = coupled_protograph(spreading, length)
            assert coupled.base_matrix.shape == (length + 2, 2 * length)

    def test_band_diagonal_structure(self):
        coupled = coupled_protograph(paper_edge_spreading(), 6)
        matrix = coupled.base_matrix
        for row in range(matrix.shape[0]):
            nonzero_blocks = np.nonzero(
                matrix[row].reshape(6, 2).sum(axis=1))[0]
            if nonzero_blocks.size:
                assert nonzero_blocks.max() - nonzero_blocks.min() <= 2

    def test_column_degrees_preserved(self):
        # Edge spreading preserves the degree distribution: every coupled
        # variable still has degree 4.
        coupled = coupled_protograph(paper_edge_spreading(), 8)
        np.testing.assert_array_equal(coupled.variable_degrees(),
                                      np.full(16, 4))

    def test_termination_rate_loss_decreases_with_length(self):
        spreading = paper_edge_spreading()
        rates = [terminated_rate(spreading, length) for length in (5, 10, 40)]
        assert rates[0] < rates[1] < rates[2] < 0.5
        assert rates[2] > 0.47

    def test_termination_length_validation(self):
        with pytest.raises(ValueError):
            coupled_protograph(paper_edge_spreading(), 2)


class TestLifting:
    def test_lifted_shape(self):
        matrix = lift_protograph(PAPER_BLOCK_PROTOGRAPH, 25, rng=0)
        assert matrix.shape == (25, 50)

    def test_lifted_column_degrees(self):
        matrix = lift_protograph(PAPER_BLOCK_PROTOGRAPH, 30, rng=0)
        column_degrees = np.asarray(matrix.sum(axis=0)).reshape(-1)
        np.testing.assert_array_equal(column_degrees, np.full(60, 4))

    def test_lifted_row_degrees(self):
        matrix = lift_protograph(PAPER_BLOCK_PROTOGRAPH, 30, rng=0)
        row_degrees = np.asarray(matrix.sum(axis=1)).reshape(-1)
        np.testing.assert_array_equal(row_degrees, np.full(30, 8))

    def test_lifting_is_binary(self):
        matrix = lift_protograph(PAPER_BLOCK_PROTOGRAPH, 40, rng=1)
        assert set(np.unique(matrix.toarray())) <= {0, 1}

    def test_lifting_reproducible(self):
        a = lift_protograph(PAPER_BLOCK_PROTOGRAPH, 20, rng=7)
        b = lift_protograph(PAPER_BLOCK_PROTOGRAPH, 20, rng=7)
        assert (a != b).nnz == 0

    def test_lifting_factor_must_cover_parallel_edges(self):
        with pytest.raises(ValueError):
            lift_protograph(PAPER_BLOCK_PROTOGRAPH, 3, rng=0)
        with pytest.raises(ValueError):
            lift_protograph(PAPER_BLOCK_PROTOGRAPH, 0, rng=0)

    def test_coupled_lifting_shape(self):
        coupled = coupled_protograph(paper_edge_spreading(), 10)
        matrix = lift_protograph(coupled, 25, rng=0)
        assert matrix.shape == (12 * 25, 20 * 25)

    def test_girth_check_runs(self):
        matrix = lift_protograph(coupled_protograph(paper_edge_spreading(), 6),
                                 31, rng=3)
        # Not asserting girth >= 6 (random circulants may contain 4-cycles),
        # only that the checker returns a boolean without crashing.
        assert matrix_girth_at_least_six(matrix, max_checks=200) in (True, False)

    @given(st.integers(min_value=8, max_value=64))
    @settings(max_examples=10, deadline=None)
    def test_lifted_edge_count(self, lifting_factor):
        matrix = lift_protograph(PAPER_BLOCK_PROTOGRAPH, lifting_factor, rng=0)
        assert matrix.nnz == 8 * lifting_factor
