"""Unit tests for the warm worker pool (``repro.core.pool``).

Covers the pool's own contracts in isolation from the sweep engine:
one-shot broadcast per generation, chunked dispatch, mid-chunk failure
durability, fast-fail promptness, fork-safety and lifecycle reuse.
"""

import os
import time

import pytest

from repro.core.pool import PoolTask, WorkerPool, broadcast_key_for


# ----------------------------------------------------------------------
# picklable module-level task functions (shipped to worker processes)
# ----------------------------------------------------------------------
def _describe(worker, tag):
    """Return enough to check which process ran us and which object."""
    return (os.getpid(), id(worker), worker["payload"], tag)


def _scale(worker, value):
    return worker["factor"] * value


def _fail(worker, value):
    raise ValueError(f"boom {value}")


def _fail_at(worker, value):
    if value == worker["fail_at"]:
        raise ValueError(f"boom {value}")
    return value


def _sleep_then(worker, seconds, value):
    time.sleep(seconds)
    return value


WORKER = {"payload": "shared-state", "factor": 3, "fail_at": 5}


def _tasks(fn, values, key=None, worker=WORKER):
    return [(value, PoolTask(fn=fn, worker=worker, args=(value,),
                             broadcast_key=key))
            for value in values]


class TestBroadcast:
    def test_worker_shipped_once_per_generation(self):
        with WorkerPool(n_workers=1) as pool:
            results = {}
            tasks = [(tag, PoolTask(fn=_describe, worker=WORKER,
                                    args=(tag,), broadcast_key="k"))
                     for tag in range(4)]
            pool.execute(tasks, record=results.__setitem__,
                         error=lambda _t, exc: exc)
            stats = pool.stats()
        # One generation, one key installation, and every task resolved
        # the *same* process-local object (identical id in one process).
        assert stats["generation"] == 1
        assert stats["broadcasts"] == 1
        assert stats["live_broadcasts"] == 1
        identities = {(pid, obj) for pid, obj, _, _ in results.values()}
        assert len(identities) == 1
        assert all(payload == "shared-state"
                   for _, _, payload, _ in results.values())

    def test_second_batch_with_live_key_is_all_hits(self):
        with WorkerPool(n_workers=1) as pool:
            results = {}
            pool.execute(_tasks(_scale, [1, 2], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            first = pool.stats()
            pool.execute(_tasks(_scale, [3, 4], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            second = pool.stats()
        # The first batch installs the key (its tasks are not hits); the
        # second batch reuses the warm generation: no new broadcast, no
        # new generation, every task a hit.
        assert first["broadcast_hits"] == 0
        assert second["generation"] == first["generation"] == 1
        assert second["broadcasts"] == 1
        assert second["broadcast_hits"] == 2
        assert results == {1: 3, 2: 6, 3: 9, 4: 12}

    def test_new_key_bumps_generation_and_keeps_old_key_live(self):
        other = {"payload": "other", "factor": 10, "fail_at": -1}
        with WorkerPool(n_workers=1) as pool:
            results = {}
            pool.execute(_tasks(_scale, [1], key="a"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            pool.execute([(2, PoolTask(fn=_scale, worker=other,
                                       args=(2,), broadcast_key="b"))],
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            stats = pool.stats()
            # "a" survived the generation rollover (full retained set is
            # re-installed), so a third batch on "a" is a hit.
            pool.execute(_tasks(_scale, [5], key="a"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            final = pool.stats()
        assert stats["generation"] == 2
        assert stats["broadcasts"] == 3  # gen1: {a}; gen2: {a, b}
        assert stats["live_broadcasts"] == 2
        assert final["generation"] == 2
        assert final["broadcast_hits"] == stats["broadcast_hits"] + 1
        assert results == {1: 3, 2: 20, 5: 15}

    def test_eviction_degrades_to_inline_shipping(self):
        # max_broadcasts=1 cannot hold both keys; the batch still
        # completes correctly (evicted key ships its worker inline).
        other = {"payload": "other", "factor": 10, "fail_at": -1}
        with WorkerPool(n_workers=1, max_broadcasts=1) as pool:
            results = {}
            tasks = _tasks(_scale, [1], key="a") + \
                [(2, PoolTask(fn=_scale, worker=other, args=(2,),
                              broadcast_key="b"))]
            pool.execute(tasks, record=results.__setitem__,
                         error=lambda _t, exc: exc)
            assert pool.stats()["live_broadcasts"] == 1
        assert results == {1: 3, 2: 20}

    def test_broadcast_key_for_matches_cache_equivalence(self):
        # Explicit keys hash their canonical form; unserializable keys
        # fall back to the worker-derived identity without raising.
        assert broadcast_key_for(WORKER, key={"scenario": "fig4"}) \
            == broadcast_key_for(WORKER, key={"scenario": "fig4"})
        assert broadcast_key_for(WORKER, key={"scenario": "fig4"}) \
            != broadcast_key_for(WORKER, key={"scenario": "fig7"})
        assert broadcast_key_for(WORKER, key=object()) \
            == broadcast_key_for(WORKER)


class TestChunkedDispatch:
    def test_large_batch_is_chunked_and_correct(self):
        values = list(range(40))
        with WorkerPool(n_workers=2) as pool:
            results = {}
            pool.execute(_tasks(_scale, values, key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            stats = pool.stats()
        assert results == {value: 3 * value for value in values}
        # 40 tasks / (2 workers * 4) = chunks of 5.
        assert stats["max_chunk_size"] == 5
        assert stats["chunks"] == 8

    def test_mid_chunk_failure_records_completed_prefix(self):
        # 8 tasks on 1 worker -> chunks of 2: [0,1] [2,3] [4,5] [6,7].
        # Task 5 fails mid-chunk; task 4's value (same chunk, earlier)
        # must still be recorded before the batch fails.
        with WorkerPool(n_workers=1) as pool:
            results = {}
            with pytest.raises(RuntimeError) as excinfo:
                pool.execute(
                    _tasks(_fail_at, list(range(8)), key="k"),
                    record=results.__setitem__,
                    error=lambda task_id, exc: RuntimeError(
                        f"task {task_id} failed: {exc}"))
        assert "task 5 failed" in str(excinfo.value)
        assert "boom 5" in str(excinfo.value)
        assert results.get(4) == 4
        assert 5 not in results and set(results) <= {0, 1, 2, 3, 4}

    def test_run_one_reraises_the_original_exception(self):
        with WorkerPool(n_workers=1) as pool:
            task = PoolTask(fn=_fail, worker=WORKER, args=(7,),
                            broadcast_key="k")
            with pytest.raises(ValueError, match="boom 7"):
                pool.run_one(task)
            # A run_one failure does not sacrifice the pool: the next
            # task reuses the same generation.
            ok = PoolTask(fn=_scale, worker=WORKER, args=(2,),
                          broadcast_key="k")
            assert pool.run_one(ok) == 6
            assert pool.stats()["generation"] == 1

    def test_unpicklable_worker_fails_as_that_task(self):
        bad = {"payload": lambda: None}  # lambdas do not pickle
        with WorkerPool(n_workers=1) as pool:
            with pytest.raises(RuntimeError, match="task 9"):
                pool.execute(
                    [(9, PoolTask(fn=_describe, worker=bad, args=(0,),
                                  broadcast_key="bad"))],
                    record=lambda *_: None,
                    error=lambda task_id, exc: RuntimeError(
                        f"task {task_id}: {exc}"))


class TestFastFail:
    def test_failure_aborts_without_draining_slow_tasks(self):
        # One immediate failure plus one 30 s sleeper: fail-fast must
        # terminate the sleeper's process instead of waiting it out.
        with WorkerPool(n_workers=2) as pool:
            tasks = [
                ("slow", PoolTask(fn=_sleep_then, worker=WORKER,
                                  args=(30.0, "done"))),
                ("bad", PoolTask(fn=_fail, worker=WORKER, args=(1,))),
            ]
            start = time.monotonic()
            with pytest.raises(ValueError, match="boom 1"):
                pool.execute(tasks, record=lambda *_: None,
                             error=lambda _t, exc: exc)
            elapsed = time.monotonic() - start
            assert elapsed < 15.0
            # The warm pool was sacrificed but lazily re-creates: the
            # next batch works and bumps the generation.
            results = {}
            pool.execute(_tasks(_scale, [4], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            assert results == {4: 12}
            assert pool.stats()["generation"] == 2


class TestLifecycle:
    def test_close_between_bursts_then_lazy_recreate(self):
        pool = WorkerPool(n_workers=1)
        try:
            results = {}
            pool.execute(_tasks(_scale, [1], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            pool.close()
            assert pool._executor is None
            pool.execute(_tasks(_scale, [2], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            assert results == {1: 3, 2: 6}
            assert pool.stats()["generation"] == 2
        finally:
            pool.close()

    def test_forked_child_recreates_its_own_executor(self):
        # Simulate inheriting a pool handle across a fork by faking the
        # recorded parent pid; the next dispatch must drop the handle
        # and build a fresh generation instead of talking to the
        # "parent's" processes.
        with WorkerPool(n_workers=1) as pool:
            results = {}
            pool.execute(_tasks(_scale, [1], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            pool._pid = -1
            pool.execute(_tasks(_scale, [2], key="k"),
                         record=results.__setitem__,
                         error=lambda _t, exc: exc)
            assert results == {1: 3, 2: 6}
            assert pool.stats()["generation"] == 2
            assert pool._pid == os.getpid()

    def test_rejects_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            WorkerPool(n_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(n_workers=None)
