"""Tests for the adaptive (CI-targeted, resumable) sweep path of
repro.core.engine.SweepEngine."""

from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np
import pytest

from repro.coding.ber import batch_seed_sequence
from repro.core.engine import SweepEngine, SweepPointError
from repro.core.store import DiskStore, MemoryStore
from repro.utils.hashing import canonical_json
from repro.utils.statistics import StoppingRule


@dataclass(frozen=True)
class BernoulliWorker:
    """Toy incremental worker: estimate a Bernoulli rate by batches.

    Module-level and frozen so the pool path can pickle it; the state is
    a plain dict (JSON round-trips through any store unchanged).
    """

    batch: int = 16

    def decode(self, stored) -> Dict[str, int]:
        if stored is None:
            return {"n": 0, "k": 0, "units": 0, "batches": 0}
        return {key: int(stored[key]) for key in ("n", "k", "units",
                                                  "batches")}

    def encode(self, state) -> Dict[str, int]:
        return dict(state)

    def satisfied(self, state, rule) -> bool:
        return rule.satisfied(state["k"], state["n"], state["units"])

    def advance(self, params: Mapping[str, Any], state, seed_sequence,
                rule):
        state = dict(state)
        while not self.satisfied(state, rule):
            child = batch_seed_sequence(seed_sequence, state["batches"])
            draws = np.random.default_rng(child).random(self.batch)
            state["k"] += int(np.count_nonzero(draws < params["p"]))
            state["n"] += self.batch
            state["units"] += self.batch
            state["batches"] += 1
        return state

    def progress(self, state) -> int:
        return int(state["units"])

    def finalize(self, params: Mapping[str, Any], state) -> Dict[str, Any]:
        return {"estimate": state["k"] / state["n"] if state["n"] else 0.0,
                "n": state["n"]}


@dataclass(frozen=True)
class ShardedBernoulliWorker(BernoulliWorker):
    """BernoulliWorker extended with the intra-point shard protocol.

    A shard computes per-batch deltas whose content depends only on
    ``(params, seed_sequence, batch_index)`` — merging them in index
    order reproduces :meth:`BernoulliWorker.advance` byte for byte.
    """

    def cursor(self, state) -> int:
        return int(state["batches"])

    def advance_shard(self, params: Mapping[str, Any], seed_sequence,
                      batch_indices):
        deltas = []
        for batch_index in batch_indices:
            child = batch_seed_sequence(seed_sequence, int(batch_index))
            draws = np.random.default_rng(child).random(self.batch)
            deltas.append({
                "k": int(np.count_nonzero(draws < params["p"])),
                "n": self.batch, "units": self.batch, "batches": 1})
        return deltas

    def absorb(self, state, delta):
        return {key: state[key] + delta[key] for key in state}


@dataclass(frozen=True)
class FailingWorker(BernoulliWorker):
    def advance(self, params, state, seed_sequence, rule):
        raise RuntimeError("boom")


@dataclass(frozen=True)
class FailingShardWorker(ShardedBernoulliWorker):
    def advance_shard(self, params, seed_sequence, batch_indices):
        raise RuntimeError("shard boom")


POINTS = [{"p": 0.5}, {"p": 0.2}, {"p": 0.05}]
LOOSE = StoppingRule(rel_ci_target=0.5, min_units=16, max_units=4096,
                     min_errors=5)
TIGHT = StoppingRule(rel_ci_target=0.1, min_units=16, max_units=4096,
                     min_errors=5)


class TestSweepAdaptive:
    def test_cold_run_computes_every_point_to_target(self):
        engine = SweepEngine(store=MemoryStore())
        outcomes = engine.sweep_adaptive(BernoulliWorker(), POINTS, LOOSE,
                                         rng=0)
        assert len(outcomes) == len(POINTS)
        for outcome in outcomes:
            assert outcome.adaptive["satisfied"]
            assert outcome.adaptive["resumed_units"] == 0
            assert outcome.adaptive["new_units"] > 0
            assert not outcome.from_cache
            # Harder points (rarer errors) need more units.
            assert outcome.value["estimate"] == pytest.approx(
                outcome.params["p"], rel=0.6)

    def test_warm_run_serves_from_store_with_zero_new_units(self):
        store = MemoryStore()
        engine = SweepEngine(store=store)
        first = engine.sweep_adaptive(BernoulliWorker(), POINTS, LOOSE,
                                      rng=0)
        second = engine.sweep_adaptive(BernoulliWorker(), POINTS, LOOSE,
                                       rng=0)
        for before, after in zip(first, second):
            assert after.from_cache
            assert after.adaptive["new_units"] == 0
            assert after.adaptive["resumed_units"] \
                == before.adaptive["total_units"]
            assert after.value == before.value

    def test_tighter_rule_upgrades_the_cached_tally(self):
        store = MemoryStore()
        engine = SweepEngine(store=store)
        loose = engine.sweep_adaptive(BernoulliWorker(), POINTS, LOOSE,
                                      rng=0)
        upgraded = engine.sweep_adaptive(BernoulliWorker(), POINTS, TIGHT,
                                         rng=0)
        cold = SweepEngine(store=MemoryStore()).sweep_adaptive(
            BernoulliWorker(), POINTS, TIGHT, rng=0)
        for loose_o, upgraded_o, cold_o in zip(loose, upgraded, cold):
            assert upgraded_o.adaptive["resumed_units"] \
                == loose_o.adaptive["total_units"]
            assert upgraded_o.adaptive["new_units"] > 0
            # Resume draws the exact noise a one-shot run would have.
            assert upgraded_o.value == cold_o.value

    def test_pool_path_matches_serial(self):
        serial = SweepEngine(store=MemoryStore()).sweep_adaptive(
            BernoulliWorker(), POINTS, TIGHT, rng=3)
        pooled = SweepEngine(n_workers=2, store=MemoryStore())\
            .sweep_adaptive(BernoulliWorker(), POINTS, TIGHT, rng=3)
        assert [o.value for o in pooled] == [o.value for o in serial]

    def test_disk_store_resume_across_engines(self, tmp_path):
        path = str(tmp_path / "store")
        first = SweepEngine(store=DiskStore(path)).sweep_adaptive(
            BernoulliWorker(), POINTS, LOOSE, rng=0)
        second = SweepEngine(store=DiskStore(path)).sweep_adaptive(
            BernoulliWorker(), POINTS, TIGHT, rng=0)
        for loose_o, tight_o in zip(first, second):
            assert tight_o.adaptive["resumed_units"] \
                == loose_o.adaptive["total_units"]

    def test_non_incremental_worker_rejected(self):
        engine = SweepEngine()
        with pytest.raises(TypeError, match="incremental-evaluation"):
            engine.sweep_adaptive(lambda params, rng: 0.0, POINTS, LOOSE,
                                  rng=0)

    def test_point_failure_raises_sweep_point_error(self):
        engine = SweepEngine(store=MemoryStore())
        with pytest.raises(SweepPointError, match="boom"):
            engine.sweep_adaptive(FailingWorker(), POINTS, LOOSE, rng=0)

    def test_outcome_to_dict_carries_adaptive_provenance(self):
        engine = SweepEngine(store=MemoryStore())
        outcome = engine.sweep_adaptive(BernoulliWorker(), POINTS[:1],
                                        LOOSE, rng=0)[0]
        payload = outcome.to_dict()
        assert payload["adaptive"]["total_units"] \
            == outcome.adaptive["total_units"]

    def test_cache_counters_track_adaptive_hits(self):
        engine = SweepEngine(store=MemoryStore())
        engine.sweep_adaptive(BernoulliWorker(), POINTS, LOOSE, rng=0)
        assert engine.cache_info()["misses"] == len(POINTS)
        engine.sweep_adaptive(BernoulliWorker(), POINTS, LOOSE, rng=0)
        assert engine.cache_info()["hits"] == len(POINTS)


class TestShardedAdaptive:
    """Deterministic intra-point sharding must be invisible in results.

    The same worker class runs serially (n_workers=1 never shards) and
    sharded (n_workers=4 splits each point's batches across shards), so
    the store keys match and the outcome JSON must be byte-identical.
    """

    @staticmethod
    def _digest(outcomes):
        return canonical_json([o.to_dict() for o in outcomes])

    def test_cold_sharded_run_is_byte_identical_to_serial(self):
        serial = SweepEngine(store=MemoryStore()).sweep_adaptive(
            ShardedBernoulliWorker(), POINTS, TIGHT, rng=3)
        sharded = SweepEngine(n_workers=4, store=MemoryStore())\
            .sweep_adaptive(ShardedBernoulliWorker(), POINTS, TIGHT, rng=3)
        assert self._digest(sharded) == self._digest(serial)

    def test_resumed_sharded_run_is_byte_identical_to_serial(
            self, tmp_path):
        # Seed two identical stores with a serial LOOSE pass, then
        # tighten the target: a sharded resume must extend the cached
        # tallies with the exact draws the serial resume makes.
        serial_path = str(tmp_path / "serial")
        sharded_path = str(tmp_path / "sharded")
        for path in (serial_path, sharded_path):
            SweepEngine(store=DiskStore(path)).sweep_adaptive(
                ShardedBernoulliWorker(), POINTS, LOOSE, rng=3)
        serial = SweepEngine(store=DiskStore(serial_path)).sweep_adaptive(
            ShardedBernoulliWorker(), POINTS, TIGHT, rng=3)
        sharded = SweepEngine(n_workers=4, store=DiskStore(sharded_path))\
            .sweep_adaptive(ShardedBernoulliWorker(), POINTS, TIGHT, rng=3)
        assert self._digest(sharded) == self._digest(serial)
        for outcome in sharded:
            assert outcome.adaptive["resumed_units"] > 0
            assert outcome.adaptive["new_units"] > 0

    def test_sharded_point_failure_raises_sweep_point_error(self):
        engine = SweepEngine(n_workers=2, store=MemoryStore())
        with pytest.raises(SweepPointError, match="shard boom"):
            engine.sweep_adaptive(FailingShardWorker(), POINTS, LOOSE,
                                  rng=0)

    def test_adaptive_ber_worker_shards_identically(self):
        # The real scenario worker (coded-BER simulator) through the
        # same byte-identity gate, on a deliberately small budget.
        from repro.scenarios.catalog import _AdaptiveBerWorker
        from repro.scenarios.specs import CodingSpec, PhySpec

        worker = _AdaptiveBerWorker(
            CodingSpec(lifting_factor=25, termination_length=10),
            PhySpec(), batch_size=4)
        points = [{"frontend": "bpsk-awgn", "ebn0_db": 1.5}]
        rule = StoppingRule(rel_ci_target=0.3, min_units=4, max_units=24,
                            min_errors=2)
        serial = SweepEngine(store=MemoryStore()).sweep_adaptive(
            worker, points, rule, rng=11)
        sharded = SweepEngine(n_workers=2, store=MemoryStore())\
            .sweep_adaptive(worker, points, rule, rng=11)
        assert self._digest(sharded) == self._digest(serial)
