"""Unit tests for repro.coding.bp, repro.coding.codes and latency formulas."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bp import BeliefPropagationDecoder
from repro.coding.codes import LdpcBlockCode, LdpcConvolutionalCode
from repro.coding.latency import (
    block_code_structural_latency,
    window_decoder_structural_latency,
)
from repro.coding.protograph import PAPER_BLOCK_PROTOGRAPH, paper_edge_spreading


@pytest.fixture(scope="module")
def block_code():
    return LdpcBlockCode(PAPER_BLOCK_PROTOGRAPH, lifting_factor=40, rng=0)


@pytest.fixture(scope="module")
def convolutional_code():
    return LdpcConvolutionalCode(paper_edge_spreading(), lifting_factor=25,
                                 termination_length=10, rng=0)


class TestBeliefPropagation:
    def test_single_parity_check_decoding(self):
        # H = [1 1 1]: valid codewords have even weight.
        decoder = BeliefPropagationDecoder(np.array([[1, 1, 1]]))
        llrs = np.array([5.0, 5.0, -0.1])
        result = decoder.decode(llrs)
        # The weak negative bit is flipped to satisfy the parity check.
        np.testing.assert_array_equal(result.hard_decisions, [0, 0, 0])
        assert result.converged

    def test_repetition_code(self):
        parity = np.array([[1, 1, 0], [0, 1, 1]])
        decoder = BeliefPropagationDecoder(parity)
        result = decoder.decode(np.array([-2.0, 0.5, -3.0]))
        np.testing.assert_array_equal(result.hard_decisions, [1, 1, 1])

    def test_no_noise_is_fixed_point(self, block_code):
        llrs = np.full(block_code.n, 8.0)
        result = block_code.decode(llrs)
        assert result.converged
        assert result.iterations == 1
        assert not np.any(result.hard_decisions)

    def test_wrong_llr_length_rejected(self, block_code):
        with pytest.raises(ValueError):
            block_code.decode(np.zeros(block_code.n + 1))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BeliefPropagationDecoder(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            BeliefPropagationDecoder(np.array([[1, 1]]), max_iterations=0)

    def test_decoder_corrects_a_few_flips_at_high_snr(self, block_code):
        rng = np.random.default_rng(0)
        llrs = np.full(block_code.n, 6.0)
        flip = rng.choice(block_code.n, size=3, replace=False)
        llrs[flip] = -2.0
        result = block_code.decode(llrs)
        assert result.converged
        assert not np.any(result.hard_decisions)


class TestEncoder:
    def test_rate_close_to_half(self, block_code):
        # Rank deficiencies of the lifted matrix make k slightly exceed n/2.
        assert 0.5 <= block_code.rate <= 0.6
        assert block_code.design_rate == pytest.approx(0.5)

    def test_encode_produces_valid_codewords(self, block_code):
        rng = np.random.default_rng(1)
        for _ in range(5):
            message = rng.integers(0, 2, block_code.k)
            codeword = block_code.encode(message)
            assert block_code.is_codeword(codeword)

    def test_encode_is_systematic(self, block_code):
        rng = np.random.default_rng(2)
        message = rng.integers(0, 2, block_code.k)
        codeword = block_code.encode(message)
        np.testing.assert_array_equal(block_code.extract_message(codeword),
                                      message)

    def test_encode_decode_round_trip(self, block_code):
        rng = np.random.default_rng(3)
        message = rng.integers(0, 2, block_code.k)
        codeword = block_code.encode(message)
        llrs = (1.0 - 2.0 * codeword) * 6.0
        result = block_code.decode(llrs)
        np.testing.assert_array_equal(result.hard_decisions, codeword)

    def test_encoder_validation(self, block_code):
        with pytest.raises(ValueError):
            block_code.encode(np.zeros(block_code.k + 1, dtype=int))
        with pytest.raises(ValueError):
            block_code.is_codeword(np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            block_code.extract_message(np.zeros(3, dtype=int))

    def test_all_zero_word_is_a_codeword(self, convolutional_code):
        assert convolutional_code.is_codeword(
            np.zeros(convolutional_code.n, dtype=int))

    @given(st.integers(min_value=0, max_value=2 ** 16 - 1))
    @settings(max_examples=15, deadline=None)
    def test_linear_code_closure(self, block_code, seed):
        rng = np.random.default_rng(seed)
        a = block_code.encode(rng.integers(0, 2, block_code.k))
        b = block_code.encode(rng.integers(0, 2, block_code.k))
        assert block_code.is_codeword((a + b) % 2)


class TestConvolutionalCodeStructure:
    def test_dimensions(self, convolutional_code):
        code = convolutional_code
        assert code.memory == 2
        assert code.block_length == 50
        assert code.check_block_length == 25
        assert code.n == 10 * 50
        assert code.n_variable_blocks == 10

    def test_rates(self, convolutional_code):
        code = convolutional_code
        assert code.design_rate == pytest.approx(0.5)
        assert code.terminated_rate == pytest.approx(1.0 - 12.0 / 20.0)

    def test_block_ranges(self, convolutional_code):
        code = convolutional_code
        assert code.variable_range_of_block(0) == (0, 50)
        assert code.variable_range_of_block(9) == (450, 500)
        assert code.check_range_of_block_row(11) == (275, 300)
        with pytest.raises(ValueError):
            code.variable_range_of_block(10)
        with pytest.raises(ValueError):
            code.check_range_of_block_row(12)

    def test_full_bp_decoding_at_high_snr(self, convolutional_code):
        llrs = np.full(convolutional_code.n, 7.0)
        result = convolutional_code.decode(llrs)
        assert result.converged
        assert not np.any(result.hard_decisions)


class TestStructuralLatency:
    def test_paper_example_values(self):
        # Paper: at Eb/N0 = 3 dB, the LDPC-CC with window decoding needs
        # T_WD = 200 information bits (e.g. W = 5, N = 40) while the block
        # code needs T_B = 400 (N = 400-bit blocks, i.e. N = 400 / nv / ...).
        assert window_decoder_structural_latency(5, 40, 2, 0.5) == 200.0
        assert block_code_structural_latency(400, 2, 0.5) == 400.0

    def test_eq4_scales_linearly_in_w_and_n(self):
        base = window_decoder_structural_latency(3, 25, 2, 0.5)
        assert window_decoder_structural_latency(6, 25, 2, 0.5) == 2 * base
        assert window_decoder_structural_latency(3, 50, 2, 0.5) == 2 * base

    def test_eq5(self):
        assert block_code_structural_latency(25, 2, 0.5) == 25.0
        assert block_code_structural_latency(60, 2, 0.5) == 60.0

    def test_window_latency_independent_of_termination_length(self):
        # Eq. (4) does not involve L.
        assert window_decoder_structural_latency(4, 40, 2, 0.5) == \
            window_decoder_structural_latency(4, 40, 2, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_decoder_structural_latency(0, 40, 2, 0.5)
        with pytest.raises(ValueError):
            window_decoder_structural_latency(4, 40, 2, 1.5)
        with pytest.raises(ValueError):
            block_code_structural_latency(40, 2, 0.0)
