"""Round-trip and acquisition-determinism regressions for the channel layer.

Covers the serialization seams the instrument subsystem leans on:
``FrequencySweep`` and ``PathLossFit`` dict round-trips, the window
invariance of echo-peak delays in the sweep → impulse-response
conversion, and the explicit-seed discipline of the synthetic VNA.
"""

import numpy as np
import pytest

from repro.channel.fitting import PathLossFit, fit_from_sweeps
from repro.channel.impulse_response import sweep_to_impulse_response
from repro.channel.measurement import FrequencySweep, SyntheticVNA
from repro.utils.hashing import canonical_json


@pytest.fixture(scope="module")
def copper_sweep():
    vna = SyntheticVNA(n_points=1024, rng=5)
    return vna.measure_parallel_copper_boards(0.1)


class TestFrequencySweepRoundTrip:
    def test_round_trip_is_bit_exact(self, copper_sweep):
        rebuilt = FrequencySweep.from_dict(copper_sweep.to_dict())
        np.testing.assert_array_equal(rebuilt.frequencies_hz,
                                      copper_sweep.frequencies_hz)
        np.testing.assert_array_equal(rebuilt.s21, copper_sweep.s21)
        assert rebuilt.distance_m == copper_sweep.distance_m
        assert rebuilt.scenario == copper_sweep.scenario

    def test_dict_form_is_canonical_json_safe(self, copper_sweep):
        data = copper_sweep.to_dict()
        # complex is split into real/imag float lists — JSON-safe
        assert set(data) == {"frequencies_hz", "s21_real", "s21_imag",
                             "distance_m", "scenario"}
        canonical_json(data)          # must not raise

    def test_round_trip_is_stable_under_re_serialization(self, copper_sweep):
        once = copper_sweep.to_dict()
        twice = FrequencySweep.from_dict(once).to_dict()
        assert canonical_json(once) == canonical_json(twice)

    def test_missing_fields_are_rejected(self, copper_sweep):
        data = copper_sweep.to_dict()
        del data["s21_imag"]
        with pytest.raises(ValueError, match="lacks"):
            FrequencySweep.from_dict(data)

    def test_unknown_fields_are_rejected(self, copper_sweep):
        data = dict(copper_sweep.to_dict(), s21_abs=[])
        with pytest.raises(ValueError, match="unknown"):
            FrequencySweep.from_dict(data)

    def test_mismatched_component_shapes_are_rejected(self, copper_sweep):
        data = copper_sweep.to_dict()
        data["s21_imag"] = data["s21_imag"][:-1]
        with pytest.raises(ValueError, match="same shape"):
            FrequencySweep.from_dict(data)


class TestPathLossFitRoundTrip:
    def test_round_trip_is_exact(self):
        vna = SyntheticVNA(n_points=256, rng=3)
        sweeps = vna.distance_sweep(np.linspace(0.05, 0.2, 6))
        fit = fit_from_sweeps(sweeps, antenna_gain_db=19.0)
        rebuilt = PathLossFit.from_dict(fit.to_dict())
        assert rebuilt == fit        # frozen dataclass: field-exact

    def test_dict_form_uses_plain_floats(self):
        fit = PathLossFit(exponent=2.0, reference_loss_db=60.0,
                          reference_distance_m=0.01, rms_error_db=0.1,
                          frequency_hz=232.5e9)
        data = fit.to_dict()
        assert all(type(value) is float for value in data.values())
        canonical_json(data)

    def test_unknown_fields_are_rejected(self):
        fit = PathLossFit(exponent=2.0, reference_loss_db=60.0,
                          reference_distance_m=0.01, rms_error_db=0.1,
                          frequency_hz=232.5e9)
        with pytest.raises(ValueError, match="unknown"):
            PathLossFit.from_dict(dict(fit.to_dict(), slope=1.0))

    def test_missing_fields_are_rejected(self):
        with pytest.raises(ValueError, match="lacks"):
            PathLossFit.from_dict({"exponent": 2.0})


class TestWindowInvariance:
    def test_echo_peak_delays_do_not_depend_on_the_window(self, copper_sweep):
        delays = {}
        for window in ("hann", "hamming", "blackman", "rect"):
            response = sweep_to_impulse_response(copper_sweep, window=window)
            peaks = response.peaks(threshold_below_los_db=20.0)
            delays[window] = [delay - response.los_delay_s
                              for delay, _ in peaks]
        reference = delays["hann"]
        assert len(reference) >= 2    # LoS + at least the copper echo
        # The tapered windows trade sidelobe level for main-lobe width,
        # but the *positions* of the resolved echoes are a property of
        # the channel: each must find the same excess delays to within
        # one delay-grid bin.
        bin_s = 1.0 / (4 * copper_sweep.bandwidth_hz)   # zero-padding 4
        for window in ("hamming", "blackman"):
            found = delays[window]
            assert len(found) == len(reference), window
            for a, b in zip(found, reference):
                assert abs(a - b) <= bin_s, window
        # The rectangular window's -13 dB sidelobes surface as spurious
        # "peaks", so only containment is required of it: every echo the
        # tapered windows resolve appears at the same delay.
        for excess in reference:
            assert any(abs(excess - other) <= bin_s
                       for other in delays["rect"])


class TestExplicitSeeds:
    def test_same_seed_reproduces_the_sweep_bit_for_bit(self):
        first = SyntheticVNA(n_points=128, rng=9).measure_freespace(0.1)
        second = SyntheticVNA(n_points=128, rng=9).measure_freespace(0.1)
        np.testing.assert_array_equal(first.s21, second.s21)

    def test_distinct_seeds_produce_distinct_noise(self):
        first = SyntheticVNA(n_points=128, rng=1).measure_freespace(0.1)
        second = SyntheticVNA(n_points=128, rng=2).measure_freespace(0.1)
        assert not np.array_equal(first.s21, second.s21)
        # ... while the underlying channel (LoS + echoes) is identical:
        # the traces differ only at the instrument noise floor.
        difference = np.abs(first.s21 - second.s21)
        assert np.max(difference) < 1e-2 * np.max(np.abs(first.s21))
