"""Unit tests for repro.channel.geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.geometry import (
    BoardToBoardGeometry,
    PAPER_AHEAD_LINK_M,
    PAPER_DIAGONAL_LINK_M,
    WirelessNode,
)


class TestWirelessNode:
    def test_distance_between_opposite_nodes(self):
        a = WirelessNode(board=0, position_m=(0.0, 0.0, 0.0))
        b = WirelessNode(board=1, position_m=(0.0, 0.0, 0.1))
        assert a.distance_to(b) == pytest.approx(0.1)

    def test_distance_is_symmetric(self):
        a = WirelessNode(board=0, position_m=(0.01, 0.02, 0.0))
        b = WirelessNode(board=1, position_m=(0.05, 0.09, 0.1))
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_ahead_link_has_zero_angle(self):
        a = WirelessNode(board=0, position_m=(0.05, 0.05, 0.0))
        b = WirelessNode(board=1, position_m=(0.05, 0.05, 0.1))
        assert a.off_boresight_angle_deg(b) == pytest.approx(0.0)

    def test_diagonal_link_angle(self):
        a = WirelessNode(board=0, position_m=(0.0, 0.0, 0.0))
        b = WirelessNode(board=1, position_m=(0.1, 0.0, 0.1))
        assert a.off_boresight_angle_deg(b) == pytest.approx(45.0)

    def test_colocated_nodes_raise(self):
        a = WirelessNode(board=0, position_m=(0.0, 0.0, 0.0))
        b = WirelessNode(board=1, position_m=(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            a.off_boresight_angle_deg(b)


class TestBoardToBoardGeometry:
    def test_paper_geometry_ahead_link(self):
        geometry = BoardToBoardGeometry.paper_geometry()
        assert geometry.ahead_link_distance_m == pytest.approx(PAPER_AHEAD_LINK_M)

    def test_node_count(self):
        geometry = BoardToBoardGeometry(nodes_per_edge=3)
        assert len(geometry.nodes) == 2 * 9
        assert len(geometry.nodes_on_board(0)) == 9
        assert len(geometry.nodes_on_board(1)) == 9

    def test_cross_board_link_count(self):
        geometry = BoardToBoardGeometry(nodes_per_edge=2)
        links = list(geometry.cross_board_links())
        assert len(links) == 4 * 4
        for tx, rx in links:
            assert tx.board == 0
            assert rx.board == 1

    def test_diagonal_longer_than_ahead(self):
        geometry = BoardToBoardGeometry.paper_geometry()
        assert geometry.diagonal_link_distance_m > geometry.ahead_link_distance_m

    def test_diagonal_link_geometry(self):
        geometry = BoardToBoardGeometry(board_size_m=0.1, board_separation_m=0.1,
                                        nodes_per_edge=2)
        expected = np.sqrt(0.1 ** 2 + 0.1 ** 2 + 0.1 ** 2)
        assert geometry.diagonal_link_distance_m == pytest.approx(expected)

    def test_single_node_per_board(self):
        geometry = BoardToBoardGeometry(nodes_per_edge=1, board_separation_m=0.05)
        assert geometry.ahead_link_distance_m == pytest.approx(0.05)
        assert geometry.diagonal_link_distance_m == pytest.approx(0.05)

    def test_invalid_board_index_rejected(self):
        geometry = BoardToBoardGeometry.paper_geometry()
        with pytest.raises(ValueError):
            geometry.nodes_on_board(2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BoardToBoardGeometry(board_size_m=0.0)
        with pytest.raises(ValueError):
            BoardToBoardGeometry(nodes_per_edge=0)

    def test_paper_constants(self):
        assert PAPER_AHEAD_LINK_M == pytest.approx(0.1)
        assert PAPER_DIAGONAL_LINK_M == pytest.approx(0.3)

    @given(st.floats(min_value=0.05, max_value=0.3),
           st.floats(min_value=0.05, max_value=0.3),
           st.integers(min_value=1, max_value=4))
    def test_ahead_link_equals_board_separation(self, size, separation, nodes):
        geometry = BoardToBoardGeometry(board_size_m=size,
                                        board_separation_m=separation,
                                        nodes_per_edge=nodes)
        assert geometry.ahead_link_distance_m == pytest.approx(separation)
        assert geometry.diagonal_link_distance_m >= separation - 1e-12
