"""Unit tests for repro.channel.pathloss."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.pathloss import (
    LogDistancePathLossModel,
    PAPER_COPPER_BOARD_EXPONENT,
    PAPER_FREESPACE_EXPONENT,
    free_space_path_loss_db,
    log_distance_path_loss_db,
)

CENTER_FREQUENCY_HZ = 232.5e9


class TestFreeSpacePathLoss:
    def test_table_i_shortest_link(self):
        # Table I: 59.8 dB at 0.1 m and 232.5 GHz.
        assert free_space_path_loss_db(0.1, CENTER_FREQUENCY_HZ) == \
            pytest.approx(59.8, abs=0.1)

    def test_table_i_largest_link(self):
        # Table I: 69.3 dB at 0.3 m.
        assert free_space_path_loss_db(0.3, CENTER_FREQUENCY_HZ) == \
            pytest.approx(69.3, abs=0.1)

    def test_doubling_distance_adds_6db(self):
        near = free_space_path_loss_db(0.05, CENTER_FREQUENCY_HZ)
        far = free_space_path_loss_db(0.10, CENTER_FREQUENCY_HZ)
        assert far - near == pytest.approx(6.02, abs=0.01)

    def test_doubling_frequency_adds_6db(self):
        low = free_space_path_loss_db(0.1, 100e9)
        high = free_space_path_loss_db(0.1, 200e9)
        assert high - low == pytest.approx(6.02, abs=0.01)

    def test_array_distances(self):
        distances = np.array([0.05, 0.1, 0.2])
        losses = free_space_path_loss_db(distances, CENTER_FREQUENCY_HZ)
        assert losses.shape == distances.shape
        assert np.all(np.diff(losses) > 0)

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, CENTER_FREQUENCY_HZ)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.1, 0.0)


class TestLogDistancePathLoss:
    def test_reference_distance_returns_reference_loss(self):
        assert log_distance_path_loss_db(0.01, 40.0, 0.01, 2.0) == \
            pytest.approx(40.0)

    def test_exponent_two_matches_friis_shape(self):
        reference = float(free_space_path_loss_db(0.01, CENTER_FREQUENCY_HZ))
        model_loss = log_distance_path_loss_db(0.1, reference, 0.01, 2.0)
        friis_loss = free_space_path_loss_db(0.1, CENTER_FREQUENCY_HZ)
        assert model_loss == pytest.approx(friis_loss, abs=1e-9)

    def test_higher_exponent_means_more_loss(self):
        low = log_distance_path_loss_db(0.2, 40.0, 0.01, 2.0)
        high = log_distance_path_loss_db(0.2, 40.0, 0.01, 3.0)
        assert high > low

    @given(st.floats(min_value=0.02, max_value=1.0),
           st.floats(min_value=1.5, max_value=4.0))
    def test_monotonic_in_distance(self, distance, exponent):
        nearer = log_distance_path_loss_db(distance, 40.0, 0.01, exponent)
        farther = log_distance_path_loss_db(distance * 1.5, 40.0, 0.01, exponent)
        assert farther > nearer


class TestLogDistanceModel:
    def test_free_space_factory_uses_paper_exponent(self):
        model = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
        assert model.exponent == PAPER_FREESPACE_EXPONENT

    def test_copper_board_factory_uses_paper_exponent(self):
        model = LogDistancePathLossModel.parallel_copper_boards(CENTER_FREQUENCY_HZ)
        assert model.exponent == PAPER_COPPER_BOARD_EXPONENT

    def test_default_reference_anchored_on_friis(self):
        model = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
        expected = free_space_path_loss_db(model.reference_distance_m,
                                           CENTER_FREQUENCY_HZ)
        assert model.reference_loss_db == pytest.approx(float(expected))

    def test_table_i_values_through_model(self):
        model = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
        assert float(model.path_loss_db(0.1)) == pytest.approx(59.8, abs=0.1)
        assert float(model.path_loss_db(0.3)) == pytest.approx(69.3, abs=0.1)

    def test_path_gain_is_inverse_of_loss(self):
        model = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
        loss_db = float(model.path_loss_db(0.15))
        gain = float(model.path_gain_linear(0.15))
        assert gain == pytest.approx(10 ** (-loss_db / 10.0))

    def test_with_antenna_gain_shifts_curve_down(self):
        model = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
        shifted = model.with_antenna_gain_db(2 * 12.0)
        difference = float(model.path_loss_db(0.2)) - float(shifted.path_loss_db(0.2))
        assert difference == pytest.approx(24.0)

    def test_copper_exponent_slightly_above_freespace(self):
        free = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
        copper = LogDistancePathLossModel.parallel_copper_boards(CENTER_FREQUENCY_HZ)
        assert float(copper.path_loss_db(0.2)) > float(free.path_loss_db(0.2))

    def test_rejects_invalid_construction(self):
        with pytest.raises(ValueError):
            LogDistancePathLossModel(frequency_hz=-1.0)
        with pytest.raises(ValueError):
            LogDistancePathLossModel(frequency_hz=1e9, exponent=0.0)
