"""End-to-end tests for the service HTTP surface and the urllib client
(repro.service.http / repro.service.client).

Each test runs a real :class:`ServiceHTTPServer` on an ephemeral port
(``port=0``) with inline evaluation (``processes=False``) and talks to
it through :class:`ServiceClient` — the same path as ``python -m repro
submit`` and the CI ``serve-smoke`` job.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.core.store import DiskStore, MemoryStore
from repro.scenarios import Scenario, run_scenario
from repro.service import ServiceClient, ServiceError, serve

#: Cheap registered scenario used throughout (4 points).
SCENARIO = "fig7"


@pytest.fixture()
def server():
    instance = serve(store=MemoryStore(), port=0, n_workers=2,
                     processes=False)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    instance._test_thread = thread
    try:
        yield instance
    finally:
        instance.stop()
        instance.server_close()


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestEndpoints:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        stats = client.stats()
        assert stats["n_workers"] == 2
        assert stats["jobs"] == {"queued": 0, "running": 0, "done": 0,
                                 "failed": 0, "cancelled": 0}
        assert stats["store"]["backend"] == "memory"

    def test_submit_wait_result_roundtrip(self, client):
        job = client.submit(SCENARIO, seed=0)
        assert job["status"] in ("queued", "running", "done")
        done = client.wait(job["job_id"], timeout=120)
        assert done["computed"] == done["n_points"] == 4
        # The served payload is byte-identical to a local run.
        local = run_scenario(SCENARIO, rng=0).to_json().encode("utf-8")
        assert client.result_bytes(job["job_id"]) == local

    def test_warm_resubmission_all_hits_and_identical_bytes(self, client):
        cold = client.submit(SCENARIO, seed=0)
        client.wait(cold["job_id"], timeout=120)
        warm = client.submit(SCENARIO, seed=0)
        assert warm["status"] == "done"
        assert warm["hits"] == 4 and warm["computed"] == 0
        assert client.result_bytes(warm["job_id"]) \
            == client.result_bytes(cold["job_id"])
        assert client.stats()["hit_rate"] == 0.5

    def test_concurrent_identical_clients_coalesce(self, server):
        # Two clients race the same spec at the daemon: one computation,
        # two byte-identical results.
        first = ServiceClient(server.url, timeout=30.0)
        second = ServiceClient(server.url, timeout=30.0)
        jobs = [first.submit(SCENARIO, seed=3),
                second.submit(SCENARIO, seed=3)]
        first.wait(jobs[0]["job_id"], timeout=120)
        second.wait(jobs[1]["job_id"], timeout=120)
        payloads = [first.result_bytes(jobs[0]["job_id"]),
                    second.result_bytes(jobs[1]["job_id"])]
        assert payloads[0] == payloads[1]
        stats = first.stats()
        assert stats["points"]["computed"] == 4
        assert stats["points"]["coalesced"] \
            + stats["points"]["store_hits"] == 4

    def test_fetch_cached_point_by_store_key(self, client):
        job = client.submit(SCENARIO, seed=0)
        done = client.wait(job["job_id"], timeout=120)
        point = done["points"][0]
        assert client.fetch(point["store_key"]) == point["value"]

    def test_overrides_and_label_pass_through(self, client):
        job = client.submit("fig4", seed=1, label="tagged",
                            overrides={"channel.rx_noise_figure_db": 7.0})
        done = client.wait(job["job_id"], timeout=120)
        assert done["label"] == "tagged"
        assert done["scenario"] == "fig4"
        assert done["status"] == "done"


class TestErrors:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_unknown_store_key_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.fetch("0" * 64)
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_unknown_scenario_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("not-a-scenario")
        assert excinfo.value.status == 400

    def test_unknown_payload_key_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("POST", "/v1/scenarios",
                         {"scenario": SCENARIO, "bogus": 1})
        assert excinfo.value.status == 400
        assert "unknown submission key" in str(excinfo.value)

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/scenarios", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_result_of_running_job_is_409(self, server, client):
        gate = threading.Event()

        def _held(params, rng):
            gate.wait(timeout=30)
            return {"y": params["x"]}

        scenario = Scenario("held", "off-paper", "gated", specs={},
                            points=[{"x": 1}], worker=_held)
        job = server.service.submit_scenario(scenario)
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.result_bytes(job["job_id"])
            assert excinfo.value.status == 409
        finally:
            gate.set()
        server.service.wait(job["job_id"], timeout=30)


class TestShutdown:
    def test_shutdown_endpoint_drains_then_stops_serving(self, server,
                                                         client):
        job = client.submit(SCENARIO, seed=0)
        client.wait(job["job_id"], timeout=120)
        assert client.shutdown() == {"status": "draining"}
        server._test_thread.join(timeout=30)
        assert not server._test_thread.is_alive()
        assert server.service.health()["accepting"] is False

    def test_disk_backed_serve_leaves_no_tmp_debris(self, tmp_path):
        store_dir = str(tmp_path / "store")
        instance = serve(store_dir=store_dir, port=0, n_workers=2,
                         processes=False)
        thread = threading.Thread(target=instance.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            local = ServiceClient(instance.url, timeout=30.0)
            job = local.submit(SCENARIO, seed=0)
            local.wait(job["job_id"], timeout=120)
        finally:
            instance.stop()
            instance.server_close()
        debris = [os.path.join(parent, name)
                  for parent, _, names in os.walk(store_dir)
                  for name in names if name.endswith(".tmp")]
        assert debris == []
        # The store survives the daemon: a fresh handle serves the run.
        assert len(DiskStore(store_dir)) == 4
        payload = json.loads(
            run_scenario(SCENARIO, rng=0, store=DiskStore(store_dir))
            .to_json())
        assert payload["scenario"] == SCENARIO
