"""Property-based tests: the log-distance fit recovers the true exponent.

Two layers of the same claim, both driven by Hypothesis across randomized
geometries:

* On exact log-distance samples the least-squares fit must return the
  generating exponent and reference loss to numerical precision — the
  fit is the inverse of the model.
* On noiseless synthetic VNA sweeps (no reflectors, noise floor pushed
  below double precision) the fitted exponent must be the free-space
  value 2, because band-averaged free-space loss separates exactly into
  ``20 log10(d) + const``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.fitting import fit_from_sweeps, fit_path_loss_exponent
from repro.channel.pathloss import LogDistancePathLossModel
from repro.channel.measurement import SyntheticVNA

TOL = 1e-6

#: Distance grids: 3-8 distinct positive distances in the centimetre-to-
#: metre range of the paper's stepping-motor campaign.  Drawn from a
#: coarse grid so the least-squares system stays well-conditioned — the
#: property under test is exact inversion, not robustness to
#: near-duplicate abscissae.
_distances = st.lists(
    st.sampled_from([round(0.02 + 0.02 * i, 2) for i in range(50)]),
    min_size=3, max_size=8, unique=True)


@settings(max_examples=30, deadline=None)
@given(distances=_distances,
       exponent=st.floats(min_value=1.5, max_value=4.0),
       reference_loss_db=st.floats(min_value=40.0, max_value=90.0))
def test_fit_inverts_the_log_distance_model(distances, exponent,
                                            reference_loss_db):
    model = LogDistancePathLossModel(frequency_hz=232.5e9,
                                     exponent=exponent,
                                     reference_distance_m=0.01,
                                     reference_loss_db=reference_loss_db)
    losses = [model.path_loss_db(d) for d in distances]
    fit = fit_path_loss_exponent(distances, losses,
                                 reference_distance_m=0.01)
    assert abs(fit.exponent - exponent) < TOL
    assert abs(fit.reference_loss_db - reference_loss_db) < 1e-4
    assert fit.rms_error_db < 1e-6


@settings(max_examples=15, deadline=None)
@given(distances=_distances, seed=st.integers(min_value=0, max_value=2**31))
def test_noiseless_sweeps_recover_the_free_space_exponent(distances, seed):
    # Reflector-free measurement with the noise floor pushed ~750 dB
    # below the LoS level: numerically noiseless at double precision.
    vna = SyntheticVNA(n_points=16, noise_floor_db=750.0, rng=seed)
    sweeps = [vna.measure(float(d), reflectors=()) for d in distances]
    gain_db = vna.tx_horn.gain_db + vna.rx_horn.gain_db
    fit = fit_from_sweeps(sweeps, antenna_gain_db=gain_db)
    assert abs(fit.exponent - 2.0) < TOL
    assert fit.rms_error_db < 1e-6
