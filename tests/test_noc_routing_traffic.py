"""Unit tests for repro.noc.routing and repro.noc.traffic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.routing import DimensionOrderedRouting, ShortestPathRouting
from repro.noc.topology import Mesh2D, Mesh3D, StarMesh
from repro.noc.traffic import (
    HotspotTraffic,
    NeighborTraffic,
    TransposeTraffic,
    UniformTraffic,
)


class TestDimensionOrderedRouting:
    def test_path_endpoints(self):
        topology = Mesh2D(4, 4)
        routing = DimensionOrderedRouting(topology)
        path = routing.router_path(0, 15)
        assert path[0] == 0
        assert path[-1] == 15

    def test_path_is_minimal(self):
        topology = Mesh3D(4, 4, 4)
        routing = DimensionOrderedRouting(topology)
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b = rng.integers(0, topology.n_routers, size=2)
            path = routing.router_path(int(a), int(b))
            assert len(path) - 1 == topology.router_distance(int(a), int(b))

    def test_consecutive_routers_are_adjacent(self):
        topology = Mesh3D(3, 3, 3)
        routing = DimensionOrderedRouting(topology)
        path = routing.router_path(0, topology.n_routers - 1)
        for upstream, downstream in zip(path[:-1], path[1:]):
            assert topology.router_distance(upstream, downstream) == 1

    def test_x_before_y(self):
        topology = Mesh2D(4, 4)
        routing = DimensionOrderedRouting(topology)
        source = topology.coordinate_to_router((0, 0))
        destination = topology.coordinate_to_router((2, 2))
        path = routing.router_path(source, destination)
        coordinates = [topology.router_coordinate(r) for r in path]
        # The y coordinate must not change until x has reached its target.
        x_done = False
        for (x, y) in coordinates:
            if y != 0:
                x_done = True
                assert x == 2
            if x_done:
                assert x == 2

    def test_self_path(self):
        topology = Mesh2D(4, 4)
        routing = DimensionOrderedRouting(topology)
        assert routing.router_path(5, 5) == [5]
        assert routing.links_on_path(5, 5) == []

    def test_module_path_uses_module_routers(self):
        topology = StarMesh(4, 4, concentration=4)
        routing = DimensionOrderedRouting(topology)
        # Modules 0 and 3 share router 0.
        assert routing.module_path(0, 3) == [0]
        path = routing.module_path(0, 63)
        assert path[0] == 0
        assert path[-1] == 15

    def test_links_on_path_length(self):
        topology = Mesh2D(5, 5)
        routing = DimensionOrderedRouting(topology)
        links = routing.links_on_path(0, 24)
        assert len(links) == topology.router_distance(0, 24)

    def test_hop_count_matches_distance(self):
        topology = Mesh3D(3, 4, 2)
        routing = DimensionOrderedRouting(topology)
        assert routing.hop_count(0, topology.n_routers - 1) == \
            topology.diameter()


class TestShortestPathRouting:
    def test_same_hop_count_as_dimension_ordered(self):
        topology = Mesh3D(3, 3, 3)
        dor = DimensionOrderedRouting(topology)
        spf = ShortestPathRouting(topology)
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b = rng.integers(0, topology.n_routers, size=2)
            assert dor.hop_count(int(a), int(b)) == spf.hop_count(int(a), int(b))

    def test_invalid_router_rejected(self):
        topology = Mesh2D(3, 3)
        routing = ShortestPathRouting(topology)
        with pytest.raises(ValueError):
            routing.router_path(0, 99)

    def test_module_path(self):
        topology = StarMesh(2, 2, concentration=2)
        routing = ShortestPathRouting(topology)
        path = routing.module_path(0, 7)
        assert path[0] == 0
        assert path[-1] == 3


class TestTrafficPatterns:
    def test_uniform_row_sums_equal_injection_rate(self):
        topology = Mesh2D(4, 4)
        traffic = UniformTraffic(topology, 0.3)
        rates = traffic.rate_matrix()
        np.testing.assert_allclose(rates.sum(axis=1), 0.3)
        assert np.all(np.diag(rates) == 0.0)

    def test_uniform_total_offered_load(self):
        topology = Mesh2D(4, 4)
        traffic = UniformTraffic(topology, 0.25)
        assert traffic.total_offered_load() == pytest.approx(0.25 * 16)

    def test_uniform_single_module(self):
        topology = Mesh2D(1, 1)
        assert UniformTraffic(topology, 0.5).rate_matrix().sum() == 0.0

    def test_hotspot_concentrates_traffic(self):
        topology = Mesh2D(4, 4)
        traffic = HotspotTraffic(topology, 0.3, hotspot_modules=[5],
                                 hotspot_fraction=0.5)
        rates = traffic.rate_matrix()
        column_loads = rates.sum(axis=0)
        assert column_loads[5] == column_loads.max()
        np.testing.assert_allclose(rates.sum(axis=1),
                                   np.where(np.arange(16) == 5,
                                            rates.sum(axis=1)[5], 0.3),
                                   atol=1e-12)

    def test_hotspot_validation(self):
        topology = Mesh2D(4, 4)
        with pytest.raises(ValueError):
            HotspotTraffic(topology, 0.3, hotspot_modules=[99])
        with pytest.raises(ValueError):
            HotspotTraffic(topology, 0.3, hotspot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotTraffic(topology, 0.3, hotspot_modules=[])

    def test_transpose_is_permutation(self):
        topology = Mesh2D(4, 4)
        rates = TransposeTraffic(topology, 0.2).rate_matrix()
        row_nonzero = (rates > 0).sum(axis=1)
        assert np.all(row_nonzero <= 1)
        assert rates.max() == pytest.approx(0.2)

    def test_neighbor_traffic_is_local(self):
        topology = Mesh2D(4, 4)
        rates = NeighborTraffic(topology, 0.2).rate_matrix()
        assert np.count_nonzero(rates) == 16
        np.testing.assert_allclose(rates.sum(axis=1), 0.2)

    def test_negative_injection_rejected(self):
        with pytest.raises(ValueError):
            UniformTraffic(Mesh2D(2, 2), -0.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20)
    def test_uniform_scales_linearly(self, rate):
        topology = Mesh2D(3, 3)
        base = UniformTraffic(topology, 1.0).rate_matrix()
        scaled = UniformTraffic(topology, rate).rate_matrix()
        np.testing.assert_allclose(scaled, rate * base, atol=1e-12)


# ----------------------------------------------------------------------
# Property tests: routing equivalence and traffic-rate invariants
# ----------------------------------------------------------------------
from repro.noc.topology import GridTopology  # noqa: E402

mesh_dimensions = st.lists(st.integers(min_value=1, max_value=4),
                           min_size=2, max_size=3)
concentrations = st.integers(min_value=1, max_value=3)


class TestRoutingProperties:
    @given(mesh_dimensions)
    @settings(max_examples=25, deadline=None)
    def test_dor_and_shortest_path_hop_counts_agree_on_meshes(self, dims):
        # Dimension-ordered routing is minimal on every mesh, so its hop
        # counts must equal BFS shortest paths for all router pairs.
        topology = GridTopology(dims)
        dor = DimensionOrderedRouting(topology)
        spf = ShortestPathRouting(topology)
        for source in range(topology.n_routers):
            for destination in range(topology.n_routers):
                assert dor.hop_count(source, destination) == \
                    spf.hop_count(source, destination)

    @given(mesh_dimensions)
    @settings(max_examples=15, deadline=None)
    def test_next_router_tables_take_one_minimal_step(self, dims):
        # Every table entry must be the second router of the full path
        # (DOR) or one hop closer to the destination (both routings).
        topology = GridTopology(dims)
        for routing_class in (DimensionOrderedRouting, ShortestPathRouting):
            routing = routing_class(topology)
            table = routing.next_router_table()
            assert table.shape == (topology.n_routers, topology.n_routers)
            for source in range(topology.n_routers):
                for destination in range(topology.n_routers):
                    step = int(table[source, destination])
                    if source == destination:
                        assert step == source
                        continue
                    assert topology.router_distance(source, step) == 1
                    assert topology.router_distance(step, destination) == \
                        topology.router_distance(source, destination) - 1

    @given(mesh_dimensions)
    @settings(max_examples=15, deadline=None)
    def test_dor_table_matches_router_path(self, dims):
        topology = GridTopology(dims)
        routing = DimensionOrderedRouting(topology)
        table = routing.next_router_table()
        for source in range(topology.n_routers):
            for destination in range(topology.n_routers):
                path = routing.router_path(source, destination)
                expected = path[1] if len(path) > 1 else source
                assert int(table[source, destination]) == expected


class TestTrafficRateProperties:
    @given(mesh_dimensions, concentrations,
           st.floats(min_value=1e-6, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_every_pattern_row_sums_to_injection_rate(self, dims,
                                                      concentration, rate):
        # The shared invariant: every module with at least one
        # destination offers exactly ``injection_rate`` flits/cycle.
        # (A module without destinations — a 1-module network, or the
        # transpose fixed point — offers nothing.)
        topology = GridTopology(dims, concentration=concentration)
        for pattern_class in (UniformTraffic, HotspotTraffic,
                              TransposeTraffic, NeighborTraffic):
            rates = pattern_class(topology, rate).rate_matrix()
            assert rates.shape == (topology.n_modules, topology.n_modules)
            assert np.all(rates >= 0.0)
            assert np.all(np.diag(rates) == 0.0)
            row_sums = rates.sum(axis=1)
            has_destinations = row_sums > 0.0
            np.testing.assert_allclose(row_sums[has_destinations], rate,
                                       rtol=1e-9)
            if topology.n_modules > 1 and pattern_class is not TransposeTraffic:
                # Only the transpose fixed point may be silent.
                assert has_destinations.all()
