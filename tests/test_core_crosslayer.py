"""Tests for the PHY/coding -> NoC bridge (repro.core.crosslayer)."""

import math

import pytest

from repro.core.crosslayer import (
    coded_residual_ber,
    link_flit_error_rate,
    link_operating_ebn0_db,
    raw_channel_ber,
)
from repro.scenarios.specs import ChannelSpec, CodingSpec, PhySpec

CODING = CodingSpec()
PHY = PhySpec()
CHANNEL = ChannelSpec()


class TestRawChannelBer:
    def test_matches_q_function_anchor(self):
        # Q(1) ~ 0.1587 at R*Eb/N0 = 0.5 (0 dB, rate 1/2).
        assert raw_channel_ber(0.0, 0.5) == pytest.approx(0.1587, abs=1e-3)

    def test_monotone_decreasing_in_ebn0(self):
        values = [raw_channel_ber(ebn0, 0.5) for ebn0 in (-2.0, 0.0, 3.0, 6.0)]
        assert values == sorted(values, reverse=True)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            raw_channel_ber(1.0, 0.0)
        with pytest.raises(ValueError):
            raw_channel_ber(1.0, 1.5)


class TestCodedResidualBer:
    def test_monotone_decreasing_and_bounded(self):
        grid = (-1.0, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0)
        values = [coded_residual_ber(CODING, ebn0) for ebn0 in grid]
        assert values == sorted(values, reverse=True)
        assert all(0.0 <= value < 0.5 for value in values)

    def test_waterfall_anchored_at_de_threshold(self):
        threshold = CODING.de_threshold_db()
        below = coded_residual_ber(CODING, threshold - 1.0)
        above = coded_residual_ber(CODING, threshold + 2.0)
        # Below threshold decoding barely helps; 2 dB above it the
        # residual BER has fallen by orders of magnitude.
        assert below > 0.5 * raw_channel_ber(threshold - 1.0,
                                             CODING.design_rate)
        assert above < 1e-3 * below

    def test_monte_carlo_path_uses_the_real_decoder(self):
        # A tiny block code far above threshold: the measured BER must be
        # (near) zero, and the call must be reproducible.
        coding = CodingSpec(family="ldpc-bc", lifting_factor=10)
        measured = coded_residual_ber(coding, 6.0, mc_codewords=4, rng=0)
        assert measured == coded_residual_ber(coding, 6.0, mc_codewords=4,
                                              rng=0)
        assert measured <= 1e-2

    def test_waveform_frontend_path(self):
        # Measured through the actual 1-bit waveform chain: hopeless at an
        # Eb/N0 where the BPSK measurement is already clean, fine well
        # above the (offset) waveform waterfall.
        coding = CodingSpec(lifting_factor=25, termination_length=10)
        frontend = PHY.make_frontend(rate=coding.design_rate,
                                     kind="one-bit-waveform")
        low = coded_residual_ber(coding, 3.5, mc_codewords=4, rng=0,
                                 frontend=frontend)
        high = coded_residual_ber(coding, 16.0, mc_codewords=4, rng=0,
                                  frontend=frontend)
        bpsk = coded_residual_ber(coding, 3.5, mc_codewords=4, rng=0)
        assert low > 0.05
        assert bpsk < 1e-3
        assert high < 1e-2


class TestLinkOperatingEbn0:
    def test_tracks_transmit_power_db_for_db(self):
        low = link_operating_ebn0_db(CHANNEL, PHY, CODING, tx_power_dbm=0.0)
        high = link_operating_ebn0_db(CHANNEL, PHY, CODING, tx_power_dbm=10.0)
        assert high - low == pytest.approx(10.0)

    def test_longer_links_deliver_less_ebn0(self):
        near = link_operating_ebn0_db(CHANNEL, PHY, CODING)
        far = link_operating_ebn0_db(ChannelSpec(distance_m=0.3), PHY, CODING)
        assert far < near


class TestLinkFlitErrorRate:
    def test_latency_relevant_range_and_monotonicity(self):
        grid = (0.5, 1.0, 2.0, 3.0, 4.0)
        values = [link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=ebn0)
                  for ebn0 in grid]
        assert values == sorted(values, reverse=True)
        assert all(0.0 <= value < 1.0 for value in values)
        # Below threshold the link is hopeless, well above it pristine.
        assert values[0] > 0.5
        assert values[-1] < 1e-6

    def test_more_payload_bits_mean_more_flit_errors(self):
        small = link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=1.5,
                                     flit_payload_bits=16)
        large = link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=1.5,
                                     flit_payload_bits=256)
        assert 0.0 < small < large < 1.0

    def test_single_bit_flit_equals_residual_ber(self):
        flit = link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=1.5,
                                    flit_payload_bits=1)
        assert flit == pytest.approx(coded_residual_ber(CODING, 1.5),
                                     rel=1e-9)

    def test_ebn0_derived_from_channel_budget_when_omitted(self):
        derived = link_flit_error_rate(CODING, PHY, CHANNEL)
        pinned = link_flit_error_rate(
            CODING, PHY, CHANNEL,
            ebn0_db=link_operating_ebn0_db(CHANNEL, PHY, CODING))
        assert derived == pytest.approx(pinned)

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=2.0,
                                 flit_payload_bits=0)

    def test_method_validation(self):
        with pytest.raises(ValueError, match="method"):
            link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=2.0,
                                 method="magic")
        # An explicit surrogate must not silently drop a requested
        # Monte-Carlo sample size, and zero codewords is never valid.
        with pytest.raises(ValueError, match="no effect"):
            link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=2.0,
                                 method="surrogate", mc_codewords=100)
        with pytest.raises(ValueError, match="at least 1"):
            link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=2.0,
                                 method="mc", mc_codewords=0)

    def test_waveform_method_rides_the_real_phy(self):
        coding = CodingSpec(lifting_factor=25, termination_length=10)
        # Clean for BPSK at 3.5 dB, hopeless for the 1-bit waveform chain
        # (its waterfall sits ~10 dB further right) — the two methods must
        # disagree exactly there.
        mc = link_flit_error_rate(coding, PHY, CHANNEL, ebn0_db=3.5,
                                  method="mc", mc_codewords=4)
        waveform = link_flit_error_rate(coding, PHY, CHANNEL, ebn0_db=3.5,
                                        method="waveform", mc_codewords=4)
        assert mc < 0.5
        assert waveform > 0.9  # nearly every 64-bit flit corrupted
        clean = link_flit_error_rate(coding, PHY, CHANNEL, ebn0_db=16.0,
                                     method="waveform", mc_codewords=4)
        assert clean < waveform


class TestNocSpecIntegration:
    def test_effective_rate_prefers_direct_probability(self):
        from repro.scenarios.specs import NocSpec

        assert NocSpec(link_error_rate=0.25).effective_link_error_rate() \
            == 0.25
        assert NocSpec().effective_link_error_rate() == 0.0

    def test_effective_rate_derives_from_ebn0(self):
        from repro.scenarios.specs import NocSpec

        spec = NocSpec(ebn0_db=1.5)
        expected = link_flit_error_rate(CODING, PHY, CHANNEL, ebn0_db=1.5)
        assert spec.effective_link_error_rate(CODING, PHY, CHANNEL) == \
            pytest.approx(expected)
        simulator = spec.make_simulator(CODING, PHY, CHANNEL)
        assert simulator.link_error_rate == pytest.approx(expected)

    def test_ambiguous_spec_rejected(self):
        from repro.scenarios.specs import NocSpec

        with pytest.raises(ValueError, match="not both"):
            NocSpec(link_error_rate=0.1, ebn0_db=2.0)

    def test_link_error_method_threads_through_spec(self):
        from repro.scenarios.specs import NocSpec

        with pytest.raises(ValueError, match="link_error_method"):
            NocSpec(link_error_method="magic")
        # A non-surrogate method without ebn0_db would be silently inert;
        # the spec rejects the incoherent combination up front.
        with pytest.raises(ValueError, match="ebn0_db"):
            NocSpec(link_error_method="waveform")
        with pytest.raises(ValueError, match="ebn0_db"):
            NocSpec(link_error_rate=0.05, link_error_method="mc")
        coding = CodingSpec(lifting_factor=25, termination_length=10)
        spec = NocSpec(ebn0_db=3.5, link_error_method="waveform")
        derived = spec.effective_link_error_rate(coding, PHY, CHANNEL)
        expected = link_flit_error_rate(coding, PHY, CHANNEL, ebn0_db=3.5,
                                        method="waveform")
        assert derived == pytest.approx(expected)
        # The surrogate default disagrees at this operating point (BPSK is
        # already past its waterfall there, the waveform chain is not).
        surrogate = NocSpec(ebn0_db=3.5).effective_link_error_rate(
            coding, PHY, CHANNEL)
        assert derived > surrogate
