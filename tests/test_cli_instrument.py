"""Tests for the `acquire` and `datasets` CLI verbs."""

import json
import os

import pytest

from repro.cli import main
from repro.core.store import DiskStore
from repro.instrument import ChannelDataset


def _acquire(tmp_path, *extra):
    datasets = str(tmp_path / "datasets")
    assert main(["acquire", "--environment", "parallel-copper-boards",
                 "--distances", "0.05,0.1", "--n-points", "48",
                 "--seed", "7", "--datasets", datasets, *extra]) == 0
    return datasets


class TestAcquire:
    def test_acquire_writes_a_loadable_dataset(self, tmp_path, capsys):
        datasets = _acquire(tmp_path)
        out = capsys.readouterr().out
        assert "acquired 2 sweep(s)" in out
        key = out.split("content key ")[1].strip()
        dataset = ChannelDataset.load(os.path.join(datasets, key + ".json"))
        assert dataset.content_key == key
        assert dataset.metadata["plan"]["seed"] == 7

    def test_acquire_is_deterministic(self, tmp_path, capsys):
        _acquire(tmp_path / "a")
        first = capsys.readouterr().out.split("content key ")[1].strip()
        _acquire(tmp_path / "b")
        second = capsys.readouterr().out.split("content key ")[1].strip()
        assert first == second

    def test_quiet_still_prints_the_machine_parsable_key(self, tmp_path,
                                                         capsys):
        _acquire(tmp_path, "--quiet")
        out = capsys.readouterr().out
        assert out.startswith("content key ")
        assert len(out.splitlines()) == 1

    def test_acquire_can_mirror_into_a_disk_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        _acquire(tmp_path, "--store", store_dir)
        key = capsys.readouterr().out.split("content key ")[1].strip()
        assert key in DiskStore(store_dir)

    def test_out_overrides_the_datasets_dir(self, tmp_path, capsys):
        out_path = str(tmp_path / "campaign.json")
        _acquire(tmp_path, "--out", out_path)
        capsys.readouterr()
        assert os.path.isfile(out_path)

    def test_bad_distances_fail_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="comma-separated"):
            main(["acquire", "--distances", "five centimetres",
                  "--seed", "0", "--datasets", str(tmp_path)])


class TestDatasets:
    def test_list_shows_acquired_datasets(self, tmp_path, capsys):
        datasets = _acquire(tmp_path)
        capsys.readouterr()
        assert main(["datasets", "list", "--datasets", datasets]) == 0
        out = capsys.readouterr().out
        assert "parallel copper boards" in out
        assert "2 sweep(s)" in out

    def test_list_json_is_machine_readable(self, tmp_path, capsys):
        datasets = _acquire(tmp_path)
        key = capsys.readouterr().out.split("content key ")[1].strip()
        assert main(["datasets", "list", "--datasets", datasets,
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["content_key"] for row in rows] == [key]

    def test_list_skips_non_dataset_json_files(self, tmp_path, capsys):
        datasets = _acquire(tmp_path)
        capsys.readouterr()
        with open(os.path.join(datasets, "notes.json"), "w") as stream:
            stream.write('{"not": "a dataset"}')
        with open(os.path.join(datasets, "broken.json"), "w") as stream:
            stream.write("{nope")
        assert main(["datasets", "list", "--datasets", datasets,
                     "--json"]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1

    def test_list_of_an_empty_directory(self, tmp_path, capsys):
        assert main(["datasets", "list", "--datasets",
                     str(tmp_path / "nowhere")]) == 0
        assert "no datasets" in capsys.readouterr().out

    def test_describe_by_key_emits_compact_json(self, tmp_path, capsys):
        datasets = _acquire(tmp_path)
        key = capsys.readouterr().out.split("content key ")[1].strip()
        assert main(["datasets", "describe", key, "--datasets", datasets,
                     "--json"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1               # one line + newline
        payload = json.loads(out)
        assert payload["content_key"] == key
        assert payload["n_sweeps"] == 2
        assert payload["metadata"]["plan"]["seed"] == 7

    def test_describe_resolves_from_a_disk_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        _acquire(tmp_path, "--store", store_dir)
        key = capsys.readouterr().out.split("content key ")[1].strip()
        # empty datasets dir: resolution must come from the store
        assert main(["datasets", "describe", key,
                     "--datasets", str(tmp_path / "empty"),
                     "--store", store_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["content_key"] == key

    def test_describe_without_a_reference_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="reference"):
            main(["datasets", "describe"])

    def test_describe_unknown_key_reports_an_error(self, tmp_path, capsys):
        code = main(["datasets", "describe", "e" * 64,
                     "--datasets", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err
