"""Tests for the Campaign API (repro.scenarios.campaign)."""

import json

import pytest

from repro.core.store import DiskStore, MemoryStore
from repro.scenarios import (
    Campaign,
    CampaignEntry,
    CampaignResult,
    run_campaign,
    run_scenario,
    scenario_names,
)

#: Cheap, deterministic scenarios for fast campaign tests.
CHEAP = ["table1", "fig4", "fig7"]


def _boom(params, rng):
    raise RuntimeError("boom")


class TestConstruction:
    def test_from_registry_covers_every_scenario(self):
        campaign = Campaign.from_registry()
        assert [entry.scenario for entry in campaign] == scenario_names()
        assert all(entry.seed == 0 for entry in campaign)

    def test_from_registry_glob_filters(self):
        names = [entry.scenario
                 for entry in Campaign.from_registry(only="fig8*")]
        assert names == ["fig8", "fig8a", "fig8b"]
        multi = Campaign.from_registry(only=["table1", "fig7"])
        assert {entry.scenario for entry in multi} == {"table1", "fig7"}

    def test_from_registry_no_match_is_an_error(self):
        with pytest.raises(ValueError, match="no scenario matches"):
            Campaign.from_registry(only="fig99*")

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            Campaign([])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate campaign label"):
            Campaign([CampaignEntry("fig4"), CampaignEntry("fig4")])
        # ... but distinct labels allow running one scenario twice.
        campaign = Campaign([CampaignEntry("fig4"),
                             CampaignEntry("fig4", label="fig4-alt",
                                           seed=1)])
        assert campaign.entries[1].label == "fig4-alt"

    def test_dict_roundtrip(self):
        campaign = Campaign([
            CampaignEntry("fig4"),
            CampaignEntry("fig4", label="quiet",
                          overrides={"channel.rx_noise_figure_db": 7.0},
                          seed=3),
        ])
        rebuilt = Campaign.from_dict(campaign.to_dict())
        assert rebuilt.entries == campaign.entries

    def test_from_dict_accepts_bare_names_and_default_seed(self):
        campaign = Campaign.from_dict(
            {"seed": 7, "entries": ["table1",
                                    {"scenario": "fig4", "seed": 1}]})
        assert campaign.entries[0] == CampaignEntry("table1", seed=7)
        assert campaign.entries[1].seed == 1

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown campaign key"):
            Campaign.from_dict({"entries": ["fig4"], "bogus": 1})
        with pytest.raises(ValueError, match="unknown campaign entry key"):
            Campaign.from_dict({"entries": [{"scenario": "fig4",
                                             "bogus": 1}]})
        with pytest.raises(ValueError, match="'scenario'"):
            Campaign.from_dict({"entries": [{"seed": 1}]})

    def test_from_file(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps({"entries": CHEAP}), encoding="utf-8")
        campaign = Campaign.from_file(str(path))
        assert [entry.scenario for entry in campaign] == CHEAP


class TestRun:
    def test_matches_individual_scenario_runs(self):
        # One shared pool/store must not change any number: every
        # scenario's result equals its standalone run at the same seed.
        result = Campaign.from_registry(only=CHEAP).run(store=MemoryStore())
        assert isinstance(result, CampaignResult)
        for entry, campaign_result in zip(result.entries, result.results):
            standalone = run_scenario(entry.scenario, rng=entry.seed)
            assert campaign_result.to_json() == standalone.to_json()

    def test_shared_pool_matches_serial(self):
        serial = Campaign.from_registry(only=CHEAP).run(store=MemoryStore())
        pooled = Campaign.from_registry(only=CHEAP).run(store=MemoryStore(),
                                                        n_workers=2)
        assert pooled.to_json() == serial.to_json()

    def test_warm_rerun_is_all_hits_and_byte_identical(self):
        store = MemoryStore()
        campaign = Campaign.from_registry(only=CHEAP)
        cold = campaign.run(store=store)
        warm = campaign.run(store=store)
        assert cold.execution["cache_hits"] == 0
        assert warm.execution["cache_misses"] == 0
        assert warm.execution["cache_hits"] == \
            warm.execution["n_points"] == cold.execution["n_points"]
        assert cold.to_json() == warm.to_json()

    def test_disk_store_resumes_across_campaign_objects(self, tmp_path):
        root = str(tmp_path / "store")
        cold = Campaign.from_registry(only=CHEAP).run(store=DiskStore(root))
        # A brand-new campaign against a reopened store: zero recompute.
        warm = Campaign.from_registry(only=CHEAP).run(store=DiskStore(root))
        assert warm.execution["cache_misses"] == 0
        assert cold.to_json() == warm.to_json()

    def test_scenario_and_campaign_share_the_same_store_keys(self):
        # Content addressing is API-independent: points computed by a
        # standalone Scenario.run land exactly where the campaign looks.
        store = MemoryStore()
        run_scenario("fig4", rng=0, store=store)
        result = Campaign.from_registry(only=["fig4"]).run(store=store)
        assert result.execution["cache_misses"] == 0

    def test_overrides_change_keys_and_results(self):
        store = MemoryStore()
        campaign = Campaign([
            CampaignEntry("fig4"),
            CampaignEntry("fig4", label="quiet",
                          overrides={"channel.rx_noise_figure_db": 7.0}),
        ])
        result = campaign.run(store=store)
        assert result.execution["cache_hits"] == 0
        baseline = result.result("fig4").value_where(target_snr_db=20.0)
        quiet = result.result("quiet").value_where(target_snr_db=20.0)
        assert quiet["short_dbm"] == pytest.approx(
            baseline["short_dbm"] - 3.0)

    def test_same_scenario_twice_computes_each_point_once(self):
        # Two labels for the same (scenario, overrides, seed) share every
        # store key: the campaign computes each point once and fans the
        # value out, reporting the duplicates as cache hits.
        store = MemoryStore()
        campaign = Campaign([CampaignEntry("fig7"),
                             CampaignEntry("fig7", label="again")])
        result = campaign.run(store=store)
        assert result.execution["cache_misses"] == 4
        assert result.execution["cache_hits"] == 0  # the store was cold
        assert result.execution["shared_points"] == 4
        assert len(store) == 4
        assert result.result("fig7").to_json() == \
            result.result("again").to_json()

    def test_unseeded_entries_run_but_never_cache(self):
        store = MemoryStore()
        campaign = Campaign([CampaignEntry("fig7", seed=None)])
        result = campaign.run(store=store)
        assert result.results[0].seed is None
        assert result.execution["cache_misses"] == 4
        assert len(store) == 0

    def test_result_lookup_and_labels(self):
        result = Campaign.from_registry(only=CHEAP).run(store=MemoryStore())
        assert result.labels() == sorted(CHEAP,
                                         key=scenario_names().index)
        assert len(result) == 3
        assert result.result("fig7").name == "fig7"
        with pytest.raises(KeyError):
            result.result("fig99")

    def test_invalid_overrides_fail_at_build_time(self):
        campaign = Campaign([
            CampaignEntry("fig4", label="bad",
                          overrides={"channel.distance_m": -1.0}),
        ])
        with pytest.raises(ValueError):
            campaign.run()

    def test_failing_entry_names_scenario_and_params(self, monkeypatch):
        from repro.core.engine import SweepPointError

        broken = Campaign([CampaignEntry("mesh3d-scaling")])
        scenarios = broken.build_scenarios()
        scenarios[0].worker = _boom
        monkeypatch.setattr(broken, "build_scenarios", lambda: scenarios)
        with pytest.raises(SweepPointError) as excinfo:
            broken.run()
        assert "mesh3d-scaling" in str(excinfo.value)
        assert excinfo.value.params == {"dimensions": "2x2x2"}
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_run_all_convenience(self):
        result = run_campaign(only="table1", store=MemoryStore())
        assert result.labels() == ["table1"]

    def test_json_export_shape(self):
        result = Campaign.from_registry(only=["fig7"]).run(
            store=MemoryStore())
        payload = json.loads(result.to_json())
        assert set(payload) == {"campaign", "scenarios"}
        assert payload["scenarios"]["fig7"]["scenario"] == "fig7"
        diagnostic = result.to_dict(include_execution=True)
        assert diagnostic["execution"]["n_points"] == 4
        assert diagnostic["scenarios"]["fig7"]["execution"][
            "cache_misses"] == 4

    def test_save_json(self, tmp_path):
        path = tmp_path / "campaign.json"
        result = Campaign.from_registry(only=["table1"]).run(
            store=MemoryStore())
        result.save_json(str(path))
        assert json.loads(path.read_text())["scenarios"]["table1"][
            "n_points"] == 9


class TestScenarioErrorAttribution:
    def test_scenario_run_names_scenario_and_params(self):
        from repro.core.engine import SweepPointError
        from repro.scenarios import Scenario

        scenario = Scenario("broken", "off-paper", "always fails",
                            specs={}, points=[{"x": 1}], worker=_boom)
        with pytest.raises(SweepPointError) as excinfo:
            scenario.run(rng=0)
        assert excinfo.value.scenario == "broken"
        assert "'broken'" in str(excinfo.value)
        assert excinfo.value.params == {"x": 1}
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_attribution_is_applied_once(self):
        # A campaign wrapping a Scenario.run failure must not stack a
        # second "scenario ..." prefix onto an already-attributed error.
        from repro.core.engine import SweepPointError

        error = SweepPointError("point failed", params={"x": 1})
        attributed = error.with_scenario("fig7")
        assert attributed.scenario == "fig7"
        assert attributed.with_scenario("other") is attributed
        assert str(attributed).count("scenario") == 1
