"""Tests for the unified NocModel protocol (repro.noc.model)."""

import math

import numpy as np
import pytest

from repro.core.system import WirelessInterconnectSystem
from repro.noc.analytic import AnalyticNocModel, LatencyResult
from repro.noc.model import NocEvaluation, NocModel, SimulatedNocModel
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Mesh2D, Mesh3D
from repro.scenarios.specs import NocSpec


class TestProtocolConformance:
    def test_both_engines_satisfy_the_protocol(self):
        topology = Mesh2D(4, 4)
        assert isinstance(AnalyticNocModel(topology), NocModel)
        assert isinstance(SimulatedNocModel(NocSimulator(topology)), NocModel)

    def test_analytic_evaluate_matches_point_queries(self):
        model = AnalyticNocModel(Mesh2D(4, 4))
        evaluation = model.evaluate(0.1)
        assert isinstance(evaluation, NocEvaluation)
        assert evaluation.source == "analytic"
        assert evaluation.mean_latency_cycles == pytest.approx(
            model.mean_latency(0.1))
        assert evaluation.accepted_throughput == pytest.approx(0.1)
        assert not evaluation.saturated
        assert evaluation.delivered_packets is None

    def test_analytic_evaluate_past_saturation(self):
        model = AnalyticNocModel(Mesh2D(4, 4))
        evaluation = model.evaluate(2.0 * model.saturation_rate())
        assert evaluation.saturated
        assert evaluation.mean_latency_cycles == math.inf
        assert evaluation.accepted_throughput == pytest.approx(
            model.saturation_rate())

    def test_simulated_evaluate_reports_counters(self):
        model = SimulatedNocModel(NocSimulator(Mesh2D(4, 4)),
                                  n_cycles=1_500, warmup_cycles=300)
        evaluation = model.evaluate(0.1, rng=0)
        assert evaluation.source == "simulated"
        assert evaluation.delivered_packets > 0
        assert evaluation.offered_packets >= evaluation.delivered_packets
        assert math.isfinite(evaluation.mean_latency_cycles)

    def test_simulated_evaluate_is_reproducible(self):
        model = SimulatedNocModel(NocSimulator(Mesh2D(4, 4)),
                                  n_cycles=1_000, warmup_cycles=200)
        assert model.evaluate(0.1, rng=5) == model.evaluate(0.1, rng=5)


class TestEngineAgreement:
    """The point of the shared interface: both engines answer the same
    question with compatible numbers."""

    @pytest.mark.parametrize("topology_factory", [
        lambda: Mesh2D(4, 4),
        lambda: Mesh3D(3, 3, 2),
    ])
    def test_low_load_agreement_through_the_protocol(self, topology_factory):
        topology = topology_factory()
        models = (AnalyticNocModel(topology),
                  SimulatedNocModel(NocSimulator(topology),
                                    n_cycles=4_000, warmup_cycles=1_000))
        evaluations = [model.evaluate(0.05, rng=3) for model in models]
        analytic, simulated = evaluations
        assert simulated.mean_latency_cycles == pytest.approx(
            analytic.mean_latency_cycles, rel=0.25)

    def test_latency_curves_share_the_result_shape(self):
        topology = Mesh2D(4, 4)
        rates = (0.02, 0.1)
        analytic = AnalyticNocModel(topology).latency_curve(rates)
        simulated = SimulatedNocModel(
            NocSimulator(topology), n_cycles=2_000,
            warmup_cycles=400).latency_curve(rates, rng=0)
        for curve in (analytic, simulated):
            assert isinstance(curve, LatencyResult)
            assert curve.topology_name == topology.name
            assert curve.mean_latency_cycles.shape == (2,)
        assert simulated.zero_load_latency() == pytest.approx(
            analytic.zero_load_latency(), rel=0.25)

    def test_simulated_curve_rejects_empty_grid(self):
        model = SimulatedNocModel(NocSimulator(Mesh2D(3, 3)))
        with pytest.raises(ValueError):
            model.latency_curve([])

    def test_simulated_model_validates_warmup(self):
        with pytest.raises(ValueError):
            SimulatedNocModel(NocSimulator(Mesh2D(3, 3)), n_cycles=100,
                              warmup_cycles=100)


class TestSpecAndSystemEntryPoints:
    def test_nocspec_builds_both_models(self):
        spec = NocSpec(topology="mesh2d", dimensions=(4, 4))
        assert isinstance(spec.make_model(), NocModel)
        model = spec.make_simulated_model(n_cycles=800, warmup_cycles=100)
        assert isinstance(model, NocModel)
        assert model.topology.n_modules == 16

    def test_system_exposes_simulated_model_alongside_analytic(self):
        system = WirelessInterconnectSystem(stack_mesh_shape=(3, 3, 2))
        analytic = system.noc_model()
        simulated = system.simulated_noc_model(n_cycles=3_000,
                                               warmup_cycles=600)
        assert isinstance(simulated, NocModel)
        assert simulated.topology is system.stack_topology
        low = simulated.evaluate(0.05, rng=2)
        assert low.mean_latency_cycles == pytest.approx(
            analytic.mean_latency(0.05), rel=0.25)

    def test_system_simulated_model_accepts_link_errors(self):
        system = WirelessInterconnectSystem(stack_mesh_shape=(3, 3, 2))
        lossy = system.simulated_noc_model(n_cycles=1_500, warmup_cycles=300,
                                           link_error_rate=0.2)
        clean = system.simulated_noc_model(n_cycles=1_500, warmup_cycles=300)
        assert lossy.evaluate(0.05, rng=4).mean_latency_cycles > \
            clean.evaluate(0.05, rng=4).mean_latency_cycles
