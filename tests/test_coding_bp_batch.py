"""Batched belief-propagation decoding: equivalence with the scalar path.

The batched engine's cross-checks rely on ``decode_batch(X)[i]`` being
*bit-exact* against ``decode(X[i])`` — posterior LLRs included — so these
tests assert exact array equality, not approximate closeness.
"""

import numpy as np
import pytest

from repro.coding.ber import BerSimulator
from repro.coding.bp import BatchDecodeResult, BeliefPropagationDecoder
from repro.coding.codes import LdpcConvolutionalCode
from repro.coding.protograph import paper_edge_spreading
from repro.coding.window_decoder import WindowDecoder


@pytest.fixture(scope="module")
def small_cc():
    return LdpcConvolutionalCode(paper_edge_spreading(), lifting_factor=25,
                                 termination_length=10, rng=0)


def _noisy_llrs(rng, sigma, shape):
    return 2.0 * (1.0 + rng.normal(0.0, sigma, size=shape)) / sigma ** 2


class TestBatchedBp:
    @pytest.mark.parametrize("sigma", [0.6, 0.8, 1.1])
    def test_batch_matches_scalar_on_random_windows(self, small_cc, sigma):
        """Window sub-decoders: batched rows equal scalar decodes exactly.

        ``sigma=1.1`` keeps several codewords from converging, covering
        the iteration-limit path as well as early termination.
        """
        window_decoder = WindowDecoder(small_cc, window_size=4,
                                       max_iterations=25)
        rng = np.random.default_rng(17)
        for target_block in (0, 3, small_cc.termination_length - 1):
            decoder, columns, _ = window_decoder._window_decoder(target_block)
            llrs = _noisy_llrs(rng, sigma, (9, columns.size))
            batch = decoder.decode_batch(llrs)
            assert isinstance(batch, BatchDecodeResult)
            for row in range(llrs.shape[0]):
                scalar = decoder.decode(llrs[row])
                assert np.array_equal(scalar.hard_decisions,
                                      batch.hard_decisions[row])
                assert np.array_equal(scalar.posterior_llrs,
                                      batch.posterior_llrs[row])
                assert scalar.iterations == batch.iterations[row]
                assert scalar.converged == bool(batch.converged[row])

    def test_batch_matches_scalar_on_full_code(self, small_cc):
        decoder = BeliefPropagationDecoder(small_cc.parity_check,
                                           max_iterations=30)
        rng = np.random.default_rng(5)
        llrs = _noisy_llrs(rng, 0.9, (6, small_cc.n))
        batch = decoder.decode_batch(llrs)
        for row in range(6):
            scalar = decoder.decode(llrs[row])
            assert np.array_equal(scalar.hard_decisions,
                                  batch.hard_decisions[row])
            assert np.array_equal(scalar.posterior_llrs,
                                  batch.posterior_llrs[row])

    def test_per_codeword_early_termination(self, small_cc):
        # A clean codeword converges in one iteration even when a noisy
        # one in the same batch needs many more.
        decoder = BeliefPropagationDecoder(small_cc.parity_check,
                                           max_iterations=30)
        rng = np.random.default_rng(2)
        clean = np.full(small_cc.n, 8.0)
        noisy = _noisy_llrs(rng, 1.0, (1, small_cc.n))[0]
        batch = decoder.decode_batch(np.stack([clean, noisy]))
        assert batch.iterations[0] == 1
        assert batch.iterations[1] > batch.iterations[0]

    def test_scalar_view(self, small_cc):
        decoder = BeliefPropagationDecoder(small_cc.parity_check)
        batch = decoder.decode_batch(np.full((3, small_cc.n), 8.0))
        assert len(batch) == 3
        view = batch[1]
        assert view.converged
        assert not np.any(view.hard_decisions)

    def test_batch_shape_validation(self, small_cc):
        decoder = BeliefPropagationDecoder(small_cc.parity_check)
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros(small_cc.n))
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros((2, small_cc.n - 1)))
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros((0, small_cc.n)))


class TestBatchedWindowDecoder:
    def test_window_batch_matches_scalar_rows(self, small_cc):
        decoder = WindowDecoder(small_cc, window_size=5, max_iterations=30)
        rng = np.random.default_rng(23)
        llrs = _noisy_llrs(rng, 0.85, (7, small_cc.n))
        batch = decoder.decode_batch(llrs)
        assert batch.hard_decisions.shape == (7, small_cc.n)
        for row in range(7):
            scalar = decoder.decode(llrs[row])
            assert np.array_equal(scalar.hard_decisions,
                                  batch.hard_decisions[row])
            assert np.array_equal(scalar.block_converged,
                                  batch.block_converged[row])
            assert np.array_equal(scalar.iterations_per_block,
                                  batch.iterations_per_block[row])
            assert scalar.structural_latency_bits == \
                batch.structural_latency_bits

    def test_window_batch_scalar_view_and_bits(self, small_cc):
        decoder = WindowDecoder(small_cc, window_size=4)
        llrs = np.full((2, small_cc.n), 8.0)
        batch = decoder.decode_batch(llrs)
        assert len(batch) == 2
        assert np.all(batch[0].block_converged)
        assert np.array_equal(decoder.decode_bits_batch(llrs),
                              batch.hard_decisions)

    def test_window_batch_validation(self, small_cc):
        decoder = WindowDecoder(small_cc, window_size=4)
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros(small_cc.n))
        with pytest.raises(ValueError):
            decoder.decode_batch(np.zeros((2, small_cc.n + 1)))


class TestBatchedBerSimulator:
    def test_batched_simulate_equals_reference(self, small_cc):
        decoder = WindowDecoder(small_cc, window_size=5, max_iterations=30)
        simulator = BerSimulator(small_cc.n, small_cc.design_rate,
                                 decoder.decode_bits,
                                 decode_batch=decoder.decode_bits_batch,
                                 batch_size=4)
        batched = simulator.simulate(2.0, n_codewords=10, rng=13)
        reference = simulator.simulate_reference(2.0, n_codewords=10, rng=13)
        assert batched == reference

    def test_batched_simulate_equals_reference_with_error_stop(self, small_cc):
        decoder = WindowDecoder(small_cc, window_size=5, max_iterations=30)
        simulator = BerSimulator(small_cc.n, small_cc.design_rate,
                                 decoder.decode_bits,
                                 decode_batch=decoder.decode_bits_batch,
                                 batch_size=3)
        batched = simulator.simulate(1.0, n_codewords=12, rng=7,
                                     max_bit_errors=40)
        reference = simulator.simulate_reference(1.0, n_codewords=12, rng=7,
                                                 max_bit_errors=40)
        assert batched == reference
        assert batched.n_codewords < 12

    def test_row_fallback_equals_reference(self):
        # Without a batch decoder, simulate() still batches the noise
        # generation but decodes row by row — same numbers either way.
        simulator = BerSimulator(codeword_length=500, rate=1.0,
                                 decode=lambda llrs: (llrs < 0).astype(int),
                                 batch_size=7)
        batched = simulator.simulate(3.0, n_codewords=20, rng=1)
        reference = simulator.simulate_reference(3.0, n_codewords=20, rng=1)
        assert batched == reference

    def test_batch_decoder_shape_checked(self):
        simulator = BerSimulator(codeword_length=10, rate=0.5,
                                 decode=lambda llrs: np.zeros(10, dtype=int),
                                 decode_batch=lambda m: np.zeros((1, 10)))
        with pytest.raises(ValueError):
            simulator.simulate(2.0, n_codewords=4, rng=0)
