"""Unit tests for repro.phy.modulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.modulation import AskConstellation


class TestConstellationConstruction:
    def test_default_is_4ask(self):
        assert AskConstellation().order == 4

    def test_unit_average_energy(self):
        for order in (2, 4, 8, 16):
            constellation = AskConstellation(order)
            assert constellation.average_energy == pytest.approx(1.0)

    def test_levels_are_symmetric(self):
        levels = AskConstellation(4).levels
        np.testing.assert_allclose(levels, -levels[::-1])

    def test_levels_equally_spaced(self):
        levels = AskConstellation(8).levels
        np.testing.assert_allclose(np.diff(levels), np.diff(levels)[0])

    def test_4ask_levels(self):
        # ±1/sqrt(5), ±3/sqrt(5)
        levels = AskConstellation(4).levels
        expected = np.array([-3.0, -1.0, 1.0, 3.0]) / np.sqrt(5.0)
        np.testing.assert_allclose(levels, expected)

    def test_bits_per_symbol(self):
        assert AskConstellation(4).bits_per_symbol == 2
        assert AskConstellation(8).bits_per_symbol == 3

    def test_invalid_orders_rejected(self):
        for order in (0, 1, 3, 6):
            with pytest.raises(ValueError):
                AskConstellation(order)


class TestMapping:
    def test_index_symbol_round_trip(self):
        constellation = AskConstellation(4)
        indices = np.array([0, 1, 2, 3, 2, 1])
        symbols = constellation.indices_to_symbols(indices)
        np.testing.assert_array_equal(
            constellation.symbols_to_indices(symbols), indices)

    def test_noisy_symbols_snap_to_nearest(self):
        constellation = AskConstellation(4)
        symbols = constellation.levels + 0.05
        np.testing.assert_array_equal(
            constellation.symbols_to_indices(symbols), [0, 1, 2, 3])

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            AskConstellation(4).indices_to_symbols(np.array([4]))

    def test_bit_round_trip(self):
        constellation = AskConstellation(4)
        indices = np.arange(4)
        bits = constellation.indices_to_bits(indices)
        np.testing.assert_array_equal(constellation.bits_to_indices(bits),
                                      indices)

    def test_gray_mapping_adjacent_levels_differ_in_one_bit(self):
        constellation = AskConstellation(8)
        bits = constellation.indices_to_bits(np.arange(8))
        for first, second in zip(bits[:-1], bits[1:]):
            assert int(np.sum(first != second)) == 1

    def test_wrong_bit_width_rejected(self):
        with pytest.raises(ValueError):
            AskConstellation(4).bits_to_indices(np.zeros((3, 3), dtype=int))

    @given(st.integers(min_value=1, max_value=3).map(lambda k: 2 ** k))
    @settings(max_examples=10)
    def test_bit_round_trip_property(self, order):
        constellation = AskConstellation(order)
        indices = np.arange(order)
        recovered = constellation.bits_to_indices(
            constellation.indices_to_bits(indices))
        np.testing.assert_array_equal(recovered, indices)


class TestRandomGeneration:
    def test_random_indices_shape_and_range(self):
        constellation = AskConstellation(4)
        indices = constellation.random_indices(1000, rng=0)
        assert indices.shape == (1000,)
        assert indices.min() >= 0
        assert indices.max() <= 3

    def test_random_symbols_use_all_levels(self):
        constellation = AskConstellation(4)
        symbols = constellation.random_symbols(2000, rng=0)
        assert len(np.unique(np.round(symbols, 6))) == 4

    def test_reproducibility(self):
        constellation = AskConstellation(4)
        np.testing.assert_array_equal(constellation.random_indices(64, rng=5),
                                      constellation.random_indices(64, rng=5))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            AskConstellation(4).random_indices(-1)


class TestSequenceEnumeration:
    def test_all_sequences_count(self):
        constellation = AskConstellation(4)
        assert constellation.all_sequences(0).shape == (1, 0)
        assert constellation.all_sequences(1).shape == (4, 1)
        assert constellation.all_sequences(3).shape == (64, 3)

    def test_all_sequences_are_unique(self):
        sequences = AskConstellation(4).all_sequences(2)
        assert len({tuple(row) for row in sequences}) == 16

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            AskConstellation(4).all_sequences(-1)
