"""Tests for the content-addressed key derivation (repro.utils.hashing)."""

from dataclasses import dataclass

import numpy as np
import pytest

import repro
from repro.utils.hashing import (
    canonical_json,
    content_hash,
    sweep_point_key,
    worker_cache_key,
)


@dataclass(frozen=True)
class _Worker:
    scale: float
    label: str = "x"

    def __call__(self, params, rng):
        return self.scale


def _free_function(params, rng):
    return 0.0


class TestCanonicalJson:
    def test_dict_order_does_not_matter(self):
        assert canonical_json({"a": 1, "b": 2}) == \
            canonical_json({"b": 2, "a": 1})

    def test_tuples_and_lists_coincide(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_numpy_scalars_are_coerced(self):
        assert canonical_json({"x": np.float64(1.5), "n": np.int64(3)}) == \
            canonical_json({"x": 1.5, "n": 3})
        assert canonical_json(np.arange(3)) == canonical_json([0, 1, 2])

    def test_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestContentHash:
    def test_stable_and_hex(self):
        digest = content_hash({"a": 1})
        assert digest == content_hash({"a": 1})
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)

    def test_different_values_differ(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestWorkerCacheKey:
    def test_equal_dataclass_state_shares_key(self):
        # Two separately constructed but equal workers — including one
        # built in a hypothetical other process — address the same
        # results.
        assert worker_cache_key(_Worker(2.0)) == worker_cache_key(
            _Worker(2.0))

    def test_different_dataclass_state_separates(self):
        assert worker_cache_key(_Worker(2.0)) != worker_cache_key(
            _Worker(3.0))

    def test_module_level_function_keyed_by_qualname_and_code(self):
        key = worker_cache_key(_free_function)
        assert key == worker_cache_key(_free_function)
        assert "test_utils_hashing._free_function" in key["function"]
        assert "code" in key

    def test_function_key_is_stable_across_processes(self):
        # A comprehension puts a nested code object into co_consts whose
        # repr embeds a memory address — the digest must recurse instead
        # of repr-ing it, or DiskStore sharing across processes silently
        # breaks for such workers.
        import os
        import subprocess
        import sys

        script = (
            "from repro.utils.hashing import worker_cache_key\n"
            "def worker(params, rng):\n"
            "    return [x * 2 for x in range(3)]\n"
            "print(worker_cache_key(worker)['code'])\n")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        runs = [subprocess.run([sys.executable, "-c", script],
                               capture_output=True, text=True, env=env,
                               check=True).stdout
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_distinct_lambdas_do_not_collide(self):
        # Both have qualname "<lambda>" — the code digest must separate
        # them, or one would silently serve the other's cached results.
        first = lambda params, rng: 1.0  # noqa: E731
        second = lambda params, rng: 2.0  # noqa: E731
        assert worker_cache_key(first) != worker_cache_key(second)
        # Same-body lambdas legitimately coincide (same computation).
        third = lambda params, rng: 1.0  # noqa: E731
        assert worker_cache_key(first) == worker_cache_key(third)

    def test_closure_falls_back_to_identity(self):
        def make(scale):
            def worker(params, rng):
                return scale
            return worker

        first, second = make(1.0), make(2.0)
        # Closures carry hidden state — they must NOT share by qualname.
        assert worker_cache_key(first) != worker_cache_key(second)
        assert "identity" in worker_cache_key(first)

    def test_opaque_object_keyed_by_identity(self):
        class Opaque:
            def __call__(self, params, rng):
                return 0.0

        key = worker_cache_key(Opaque())
        assert "identity" in key and "process" in key

    def test_dataclass_wrapping_opaque_object_shares_by_that_identity(self):
        # The NocSimulator/BerSimulator pattern: a frozen dataclass worker
        # around one opaque simulator instance.  Two wrappers of the SAME
        # instance share a key (the historical equality-cache behaviour);
        # wrappers of different instances do not.
        @dataclass(frozen=True)
        class Wrapper:
            simulator: object
            n_cycles: int

        class Simulator:  # opaque: not a dataclass, no to_dict
            pass

        shared = Simulator()
        assert worker_cache_key(Wrapper(shared, 800)) == \
            worker_cache_key(Wrapper(shared, 800))
        assert worker_cache_key(Wrapper(shared, 800)) != \
            worker_cache_key(Wrapper(shared, 900))
        assert worker_cache_key(Wrapper(Simulator(), 800)) != \
            worker_cache_key(Wrapper(shared, 800))

    def test_equal_state_different_worker_types_do_not_collide(self):
        @dataclass(frozen=True)
        class Other:
            scale: float
            label: str = "x"

        assert worker_cache_key(_Worker(2.0)) != worker_cache_key(
            Other(2.0))

    def test_dataclass_call_body_is_part_of_the_key(self):
        # Editing a worker's __call__ must invalidate stored results
        # even when type name and field state are unchanged.
        def make(body):
            namespace = {}
            exec("from dataclasses import dataclass\n"          # noqa: S102
                 "@dataclass(frozen=True)\n"
                 "class W:\n"
                 "    s: float\n"
                 "    def __call__(self, params, rng):\n"
                 f"        return {body}\n", namespace)
            return namespace["W"]

        first, second, third = make("1.0"), make("2.0"), make("1.0")
        assert worker_cache_key(first(0.5)) != worker_cache_key(second(0.5))
        assert worker_cache_key(first(0.5)) == worker_cache_key(third(0.5))
        assert "call" in worker_cache_key(first(0.5))

    def test_nested_dataclasses_keep_their_type_tags(self):
        # A dataclass nested inside a container field must keep its type
        # in the description — two configurations differing only in a
        # nested type must not serve each other's cached results.
        @dataclass(frozen=True)
        class A:
            x: int

        @dataclass(frozen=True)
        class B:
            x: int

        @dataclass(frozen=True)
        class Wrapper:
            config: dict

        assert worker_cache_key(Wrapper({"inner": A(1)})) != \
            worker_cache_key(Wrapper({"inner": B(1)}))
        assert worker_cache_key(Wrapper({"inner": A(1)})) == \
            worker_cache_key(Wrapper({"inner": A(1)}))

    def test_set_literals_do_not_leak_hash_randomisation(self):
        # frozenset constants in a worker's code repr in PYTHONHASHSEED
        # order; the digest must be order-independent or cross-process
        # DiskStore sharing silently breaks.
        import os
        import subprocess
        import sys

        script = (
            "from repro.utils.hashing import worker_cache_key\n"
            "def worker(params, rng):\n"
            "    return params['mode'] in {'alpha', 'beta', 'gamma'}\n"
            "print(worker_cache_key(worker)['code'])\n")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        digests = set()
        for seed in ("1", "2"):
            env["PYTHONHASHSEED"] = seed
            digests.add(subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, env=env, check=True).stdout)
        assert len(digests) == 1


class TestSweepPointKey:
    def test_full_tuple_is_covered(self):
        base = sweep_point_key({"w": 1}, {"a": 1}, 0, (0,))
        assert base == sweep_point_key({"w": 1}, {"a": 1}, 0, (0,))
        assert base != sweep_point_key({"w": 2}, {"a": 1}, 0, (0,))
        assert base != sweep_point_key({"w": 1}, {"a": 2}, 0, (0,))
        assert base != sweep_point_key({"w": 1}, {"a": 1}, 1, (0,))
        assert base != sweep_point_key({"w": 1}, {"a": 1}, 0, (1,))

    def test_version_is_folded_in(self, monkeypatch):
        before = sweep_point_key({"w": 1}, {"a": 1}, 0, (0,))
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert sweep_point_key({"w": 1}, {"a": 1}, 0, (0,)) != before

    def test_numpy_seed_and_params_normalise(self):
        assert sweep_point_key({"w": 1}, {"a": np.float64(1.0)},
                               np.int64(3), (np.int64(0),)) == \
            sweep_point_key({"w": 1}, {"a": 1.0}, 3, (0,))

    def test_unserializable_params_fail_loudly(self):
        with pytest.raises(TypeError):
            sweep_point_key({"w": 1}, {"a": object()}, 0, (0,))
