"""Unit tests for repro.utils.units."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    db_to_linear,
    dbm_to_watt,
    ebn0_db_to_snr_db,
    linear_to_db,
    snr_db_to_ebn0_db,
    thermal_noise_power_dbm,
    thermal_noise_power_watt,
    watt_to_dbm,
    wavelength,
)


class TestDbConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_inverse(self):
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    def test_array_input(self):
        values = np.array([0.0, 10.0, 20.0])
        np.testing.assert_allclose(db_to_linear(values), [1.0, 10.0, 100.0])

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_round_trip_property(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9)


class TestDbmConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watt(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watt(30.0) == pytest.approx(1.0)

    def test_watt_to_dbm_inverse(self):
        assert watt_to_dbm(1e-3) == pytest.approx(0.0)

    def test_watt_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watt_to_dbm(0.0)

    @given(st.floats(min_value=-80.0, max_value=60.0))
    def test_round_trip_property(self, power_dbm):
        assert watt_to_dbm(dbm_to_watt(power_dbm)) == pytest.approx(
            power_dbm, abs=1e-9)


class TestWavelength:
    def test_232_5_ghz(self):
        # ~1.29 mm at the paper's centre frequency.
        assert wavelength(232.5e9) == pytest.approx(1.2894e-3, rel=1e-3)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            wavelength(0.0)


class TestThermalNoise:
    def test_290k_1hz_is_minus_174_dbm(self):
        assert thermal_noise_power_dbm(1.0, 290.0) == pytest.approx(-174.0, abs=0.1)

    def test_paper_noise_floor(self):
        # 25 GHz bandwidth at 323 K: about -69.5 dBm before the noise figure.
        value = thermal_noise_power_dbm(25e9, 323.0)
        assert value == pytest.approx(-69.5, abs=0.2)

    def test_watt_scales_linearly_with_bandwidth(self):
        single = thermal_noise_power_watt(1e9, 300.0)
        double = thermal_noise_power_watt(2e9, 300.0)
        assert double == pytest.approx(2.0 * single)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_power_watt(0.0, 290.0)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            thermal_noise_power_watt(1e9, 0.0)


class TestEbn0Snr:
    def test_rate_one_bpsk_identity(self):
        assert ebn0_db_to_snr_db(5.0, rate=1.0) == pytest.approx(5.0)

    def test_rate_half_costs_3db(self):
        assert ebn0_db_to_snr_db(5.0, rate=0.5) == pytest.approx(5.0 - 3.0103,
                                                                 abs=1e-3)

    def test_two_bits_per_symbol_gains_3db(self):
        assert ebn0_db_to_snr_db(5.0, rate=1.0, bits_per_symbol=2.0) == \
            pytest.approx(5.0 + 3.0103, abs=1e-3)

    def test_oversampling_costs_snr(self):
        plain = ebn0_db_to_snr_db(5.0, rate=1.0)
        oversampled = ebn0_db_to_snr_db(5.0, rate=1.0, oversampling=5.0)
        assert oversampled < plain

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ebn0_db_to_snr_db(5.0, rate=0.0)
        with pytest.raises(ValueError):
            ebn0_db_to_snr_db(5.0, rate=1.5)

    @given(st.floats(min_value=-10.0, max_value=30.0),
           st.floats(min_value=0.1, max_value=1.0),
           st.floats(min_value=1.0, max_value=4.0))
    def test_round_trip_property(self, ebn0, rate, bits):
        snr = ebn0_db_to_snr_db(ebn0, rate=rate, bits_per_symbol=bits)
        back = snr_db_to_ebn0_db(snr, rate=rate, bits_per_symbol=bits)
        assert back == pytest.approx(ebn0, abs=1e-9)
