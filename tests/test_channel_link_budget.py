"""Unit tests for repro.channel.link_budget (Table I, Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.link_budget import (
    LinkBudget,
    LinkBudgetParameters,
    PAPER_LINK_BUDGET,
    required_tx_power_dbm,
)


class TestTableI:
    def test_default_parameters_match_table_i(self):
        p = PAPER_LINK_BUDGET
        assert p.rx_noise_figure_db == 10.0
        assert p.path_loss_exponent == 2.0
        assert p.tx_array_gain_db == 12.0
        assert p.rx_array_gain_db == 12.0
        assert p.butler_matrix_inaccuracy_db == 5.0
        assert p.polarization_mismatch_db == 3.0
        assert p.implementation_loss_db == 5.0
        assert p.rx_temperature_k == 323.0
        assert p.bandwidth_hz == 25e9

    def test_derived_pathloss_entries(self):
        table = LinkBudget().table_entries()
        assert table["path_loss_shortest_link_db"] == pytest.approx(59.8, abs=0.1)
        assert table["path_loss_largest_link_db"] == pytest.approx(69.3, abs=0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkBudgetParameters(bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            LinkBudgetParameters(rx_noise_figure_db=-1.0)
        with pytest.raises(ValueError):
            LinkBudgetParameters(rx_temperature_k=-300.0)


class TestNoiseFloor:
    def test_noise_floor_value(self):
        # k*T*B at 323 K over 25 GHz is about -69.5 dBm; +10 dB noise figure.
        budget = LinkBudget()
        assert budget.noise_floor_dbm == pytest.approx(-59.5, abs=0.3)

    def test_noise_floor_scales_with_bandwidth(self):
        narrow = LinkBudget().with_parameters(bandwidth_hz=2.5e9)
        assert LinkBudget().noise_floor_dbm - narrow.noise_floor_dbm == \
            pytest.approx(10.0, abs=0.01)


class TestRequiredTxPower:
    def test_monotonic_in_snr(self):
        budget = LinkBudget()
        snrs = np.linspace(0.0, 35.0, 36)
        powers = budget.required_tx_power_dbm(snrs, 0.1)
        assert np.all(np.diff(powers) > 0)
        # Slope is exactly 1 dB per dB of SNR.
        np.testing.assert_allclose(np.diff(powers), 1.0, atol=1e-9)

    def test_longest_link_needs_more_power(self):
        budget = LinkBudget()
        short = budget.required_tx_power_dbm(20.0, 0.1)
        long = budget.required_tx_power_dbm(20.0, 0.3)
        # 9.5 dB more pathloss for 0.3 m vs 0.1 m.
        assert float(long - short) == pytest.approx(9.54, abs=0.05)

    def test_butler_mismatch_costs_5db(self):
        budget = LinkBudget()
        without = budget.required_tx_power_dbm(20.0, 0.3, False)
        with_mismatch = budget.required_tx_power_dbm(20.0, 0.3, True)
        assert float(with_mismatch - without) == pytest.approx(5.0)

    def test_fig4_shortest_link_anchor(self):
        # Fig. 4: the shortest-link curve passes roughly through
        # (SNR=20 dB, PTX≈4 dBm) with the Table I budget.
        budget = LinkBudget()
        power = float(budget.required_tx_power_dbm(20.0, 0.1))
        assert power == pytest.approx(4.3, abs=1.0)

    def test_fig4_worst_case_reaches_tens_of_dbm(self):
        # Fig. 4 tops out near 40 dBm at SNR = 35 dB for the Butler-matrix
        # worst case; our budget should land in the same region.
        budget = LinkBudget()
        power = float(budget.required_tx_power_dbm(35.0, 0.3, True))
        assert 30.0 <= power <= 45.0

    def test_convenience_wrapper_matches_class(self):
        direct = required_tx_power_dbm(15.0, 0.1)
        via_class = LinkBudget().required_tx_power_dbm(15.0, 0.1)
        assert float(direct) == pytest.approx(float(via_class))

    @given(st.floats(min_value=0.0, max_value=35.0),
           st.floats(min_value=0.05, max_value=0.5))
    def test_round_trip_with_received_snr(self, snr, distance):
        budget = LinkBudget()
        power = budget.required_tx_power_dbm(snr, distance)
        achieved = budget.received_snr_db(power, distance)
        assert float(achieved) == pytest.approx(snr, abs=1e-9)


class TestLinkMargin:
    def test_margin_positive_when_power_sufficient(self):
        budget = LinkBudget()
        needed = float(budget.required_tx_power_dbm(20.0, 0.1))
        assert budget.link_margin_db(needed + 3.0, 0.1, 20.0) == pytest.approx(3.0)

    def test_margin_negative_when_power_insufficient(self):
        budget = LinkBudget()
        needed = float(budget.required_tx_power_dbm(20.0, 0.3, True))
        assert budget.link_margin_db(needed - 2.0, 0.3, 20.0, True) == \
            pytest.approx(-2.0)

    def test_with_parameters_returns_new_budget(self):
        base = LinkBudget()
        modified = base.with_parameters(rx_noise_figure_db=6.0)
        assert modified.parameters.rx_noise_figure_db == 6.0
        assert base.parameters.rx_noise_figure_db == 10.0
        assert modified.noise_floor_dbm < base.noise_floor_dbm
