"""Unit tests for repro.channel.measurement and impulse_response."""

import numpy as np
import pytest

from repro.channel.impulse_response import (
    reflection_margin_db,
    sweep_to_impulse_response,
)
from repro.channel.measurement import (
    COPPER_BOARD_EXCESS_LOSS_DB_PER_M,
    Reflector,
    SyntheticVNA,
    copper_board_reflectors,
    freespace_reflectors,
)
from repro.utils.constants import SPEED_OF_LIGHT_M_PER_S


class TestReflectorInventory:
    def test_freespace_reflectors_are_weak(self):
        for reflector in freespace_reflectors():
            assert reflector.level_below_los_db >= 20.0

    def test_copper_board_adds_reflectors(self):
        assert len(copper_board_reflectors()) > len(freespace_reflectors())

    def test_copper_board_strongest_echo_at_15db(self):
        # The paper's headline: reflections at least 15 dB below LoS.
        margins = [r.level_below_los_db for r in copper_board_reflectors()]
        assert min(margins) == pytest.approx(15.0)

    def test_reflector_validation(self):
        with pytest.raises(ValueError):
            Reflector("bad", excess_path_m=0.0, level_below_los_db=10.0)
        with pytest.raises(ValueError):
            Reflector("bad", excess_path_m=0.1, level_below_los_db=0.0)


class TestSyntheticVNA:
    def test_default_band_matches_paper(self):
        vna = SyntheticVNA()
        frequencies = vna.frequencies_hz
        assert frequencies[0] == pytest.approx(220e9)
        assert frequencies[-1] == pytest.approx(245e9)
        assert frequencies.size == 4096

    def test_sweep_shape(self):
        vna = SyntheticVNA(n_points=512, rng=0)
        sweep = vna.measure_freespace(0.1)
        assert sweep.n_points == 512
        assert sweep.s21.shape == (512,)
        assert sweep.scenario == "freespace"

    def test_pathloss_recovered_from_sweep(self):
        vna = SyntheticVNA(rng=0)
        sweep = vna.measure_freespace(0.1)
        recovered = sweep.mean_path_loss_db(remove_antenna_gain_db=2 * 9.5)
        assert recovered == pytest.approx(59.8, abs=0.5)

    def test_s21_decreases_with_distance(self):
        vna = SyntheticVNA(rng=0)
        near = vna.measure_freespace(0.05)
        far = vna.measure_freespace(0.2)
        assert near.mean_path_loss_db() < far.mean_path_loss_db()

    def test_copper_scenario_has_more_loss(self):
        vna = SyntheticVNA(rng=0)
        distance = 0.15
        free = vna.measure_freespace(distance)
        copper = vna.measure_parallel_copper_boards(distance)
        assert copper.mean_path_loss_db() > free.mean_path_loss_db()

    def test_distance_sweep_scenarios(self):
        vna = SyntheticVNA(n_points=256, rng=0)
        sweeps = vna.distance_sweep([0.05, 0.1], "parallel copper boards")
        assert len(sweeps) == 2
        assert all(s.scenario == "parallel copper boards" for s in sweeps)
        with pytest.raises(ValueError):
            vna.distance_sweep([0.05], "underwater")

    def test_measurement_is_reproducible_with_seed(self):
        a = SyntheticVNA(n_points=256, rng=3).measure_freespace(0.1)
        b = SyntheticVNA(n_points=256, rng=3).measure_freespace(0.1)
        np.testing.assert_allclose(a.s21, b.s21)

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            SyntheticVNA(start_frequency_hz=245e9, stop_frequency_hz=220e9)
        with pytest.raises(ValueError):
            SyntheticVNA(n_points=1)
        with pytest.raises(ValueError):
            SyntheticVNA().measure(0.0)
        with pytest.raises(ValueError):
            SyntheticVNA().measure(0.1, excess_loss_db_per_m=-1.0)

    def test_excess_loss_constant_is_small(self):
        # The copper-board excess loss is a small correction, not a new
        # propagation regime.
        assert 0.0 < COPPER_BOARD_EXCESS_LOSS_DB_PER_M < 5.0


class TestImpulseResponse:
    def test_los_delay_matches_distance(self):
        vna = SyntheticVNA(rng=0)
        distance = 0.05
        response = sweep_to_impulse_response(vna.measure_freespace(distance))
        expected_delay = distance / SPEED_OF_LIGHT_M_PER_S
        assert response.los_delay_s == pytest.approx(expected_delay, rel=0.05)

    def test_los_delay_for_150mm_link(self):
        vna = SyntheticVNA(rng=0)
        response = sweep_to_impulse_response(
            vna.measure_parallel_copper_boards(0.15))
        assert response.los_delay_s == pytest.approx(0.5e-9, rel=0.05)

    def test_reflection_margin_freespace_exceeds_20db(self):
        vna = SyntheticVNA(rng=0)
        response = sweep_to_impulse_response(vna.measure_freespace(0.05))
        assert reflection_margin_db(response) >= 20.0

    def test_reflection_margin_copper_is_at_least_15db(self):
        # Paper conclusion: reflections always >= 15 dB below the LoS path.
        vna = SyntheticVNA(rng=0)
        for distance in (0.05, 0.10, 0.15):
            response = sweep_to_impulse_response(
                vna.measure_parallel_copper_boards(distance))
            assert reflection_margin_db(response) >= 14.0

    def test_copper_margin_smaller_than_freespace(self):
        vna = SyntheticVNA(rng=0)
        free = sweep_to_impulse_response(vna.measure_freespace(0.05))
        copper = sweep_to_impulse_response(
            vna.measure_parallel_copper_boards(0.05))
        assert reflection_margin_db(copper) < reflection_margin_db(free)

    def test_peaks_include_copper_echo(self):
        vna = SyntheticVNA(rng=0)
        response = sweep_to_impulse_response(
            vna.measure_parallel_copper_boards(0.05))
        peaks = response.peaks(threshold_below_los_db=20.0)
        # LoS plus at least the strong copper-board echo.
        assert len(peaks) >= 2
        delays = [delay for delay, _ in peaks]
        assert delays == sorted(delays)

    def test_window_options(self):
        vna = SyntheticVNA(n_points=512, rng=0)
        sweep = vna.measure_freespace(0.08)
        for window in ("hann", "hamming", "blackman", "rect"):
            response = sweep_to_impulse_response(sweep, window=window)
            assert response.los_level_db == pytest.approx(
                sweep_to_impulse_response(sweep).los_level_db, abs=6.0)
        with pytest.raises(ValueError):
            sweep_to_impulse_response(sweep, window="kaiser")
        with pytest.raises(ValueError):
            sweep_to_impulse_response(sweep, zero_padding=0)

    def test_guard_validation(self):
        vna = SyntheticVNA(n_points=256, rng=0)
        response = sweep_to_impulse_response(vna.measure_freespace(0.05))
        with pytest.raises(ValueError):
            reflection_margin_db(response, guard_s=1.0)
