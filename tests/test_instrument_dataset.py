"""Tests for the versioned, content-addressed ChannelDataset format."""

import json
import os

import numpy as np
import pytest

from repro.core.store import DiskStore, MemoryStore
from repro.instrument import (
    DATASET_FORMAT,
    DATASET_VERSION,
    AcquisitionPlan,
    ChannelDataset,
    SimulatedVna,
    acquire_dataset,
    dataset_reference_key,
    is_content_key,
    resolve_dataset,
)
from repro.instrument.driver import InstrumentStateError
from repro.utils.hashing import content_hash


@pytest.fixture(scope="module")
def dataset():
    plan = AcquisitionPlan(distances_m=(0.05, 0.1), seed=11,
                           environment="parallel copper boards",
                           n_points=64, name="unit-test campaign")
    with SimulatedVna(seed=plan.seed) as vna:
        return acquire_dataset(vna, plan)


class TestAcquisition:
    def test_needs_a_connected_instrument(self):
        plan = AcquisitionPlan(distances_m=(0.1,), seed=0)
        with pytest.raises(InstrumentStateError, match="connected"):
            acquire_dataset(SimulatedVna(seed=0), plan)

    def test_plan_validates_inputs(self):
        with pytest.raises(ValueError, match="at least one distance"):
            AcquisitionPlan(distances_m=(), seed=0)
        with pytest.raises(ValueError, match="positive"):
            AcquisitionPlan(distances_m=(0.0,), seed=0)
        with pytest.raises(ValueError, match="environment"):
            AcquisitionPlan(distances_m=(0.1,), seed=0,
                            environment="office")
        with pytest.raises(ValueError, match="two frequency points"):
            AcquisitionPlan(distances_m=(0.1,), seed=0, n_points=1)

    def test_plan_seed_is_required(self):
        with pytest.raises(TypeError):
            AcquisitionPlan(distances_m=(0.1,))

    def test_metadata_records_full_provenance(self, dataset):
        meta = dataset.metadata
        assert "SimulatedVna" in meta["instrument"]
        assert meta["configuration"]["seed"] == 11
        assert meta["configuration"]["n_points"] == 64
        assert meta["plan"]["distances_m"] == [0.05, 0.1]
        assert meta["plan"]["seed"] == 11
        assert meta["name"] == "unit-test campaign"

    def test_sweeps_follow_the_plan_grid(self, dataset):
        assert dataset.distances_m == (0.05, 0.1)
        assert all(sweep.scenario == "parallel copper boards"
                   for sweep in dataset.sweeps)
        assert all(sweep.n_points == 64 for sweep in dataset.sweeps)

    def test_same_plan_reproduces_the_same_content_key(self, dataset):
        plan = AcquisitionPlan(distances_m=(0.05, 0.1), seed=11,
                               environment="parallel copper boards",
                               n_points=64, name="unit-test campaign")
        with SimulatedVna(seed=plan.seed) as vna:
            again = acquire_dataset(vna, plan)
        assert again.content_key == dataset.content_key
        assert again.to_json() == dataset.to_json()

    def test_distinct_seeds_produce_distinct_datasets(self):
        def acquire(seed):
            plan = AcquisitionPlan(distances_m=(0.1,), seed=seed,
                                   n_points=64)
            with SimulatedVna(seed=plan.seed) as vna:
                return acquire_dataset(vna, plan)

        assert acquire(1).content_key != acquire(2).content_key


class TestSerialization:
    def test_round_trip_is_exact(self, dataset):
        rebuilt = ChannelDataset.from_dict(dataset.to_dict())
        assert rebuilt.to_json() == dataset.to_json()
        assert rebuilt.content_key == dataset.content_key
        for original, copy in zip(dataset.sweeps, rebuilt.sweeps):
            np.testing.assert_array_equal(original.s21, copy.s21)

    def test_envelope_carries_format_and_version(self, dataset):
        data = dataset.to_dict()
        assert data["format"] == DATASET_FORMAT
        assert data["version"] == DATASET_VERSION

    def test_wrong_format_is_rejected(self, dataset):
        data = dict(dataset.to_dict(), format="something-else")
        with pytest.raises(ValueError, match="not a channel dataset"):
            ChannelDataset.from_dict(data)

    def test_future_version_is_rejected(self, dataset):
        data = dict(dataset.to_dict(), version=DATASET_VERSION + 1)
        with pytest.raises(ValueError, match="version"):
            ChannelDataset.from_dict(data)

    def test_unknown_fields_are_rejected(self, dataset):
        data = dict(dataset.to_dict(), extra=1)
        with pytest.raises(ValueError, match="unknown"):
            ChannelDataset.from_dict(data)

    def test_empty_dataset_is_rejected(self):
        with pytest.raises(ValueError, match="at least one sweep"):
            ChannelDataset(sweeps=())

    def test_content_key_is_the_hash_of_the_canonical_dict(self, dataset):
        assert dataset.content_key == content_hash(dataset.to_dict())
        assert is_content_key(dataset.content_key)

    def test_file_round_trip(self, dataset, tmp_path):
        path = str(tmp_path / "nested" / "campaign.json")
        key = dataset.save(path)
        assert key == dataset.content_key
        loaded = ChannelDataset.load(path)
        assert loaded.content_key == key

    def test_describe_summarizes_grid_and_provenance(self, dataset):
        summary = dataset.describe()
        assert summary["content_key"] == dataset.content_key
        assert summary["n_sweeps"] == 2
        assert summary["distances_m"] == [0.05, 0.1]
        assert summary["scenarios"] == ["parallel copper boards"]
        assert summary["metadata"]["plan"]["seed"] == 11
        # The summary must itself be JSON-serializable (CLI --json path).
        json.dumps(summary)

    def test_sweep_near_picks_the_closest_distance(self, dataset):
        assert dataset.sweep_near(0.04).distance_m == 0.05
        assert dataset.sweep_near(0.4).distance_m == 0.1


class TestStoreIntegration:
    def test_store_and_fetch_round_trip(self, dataset):
        store = MemoryStore()
        key = dataset.store(store)
        assert key == dataset.content_key
        fetched = ChannelDataset.from_store(store, key)
        assert fetched.to_json() == dataset.to_json()

    def test_corrupt_store_entry_is_rejected(self, dataset):
        store = MemoryStore()
        key = dataset.store(store)
        tampered = dataset.to_dict()
        tampered["metadata"] = dict(tampered["metadata"], name="tampered")
        store.put(key, tampered)       # mislabeled: content no longer hashes to key
        with pytest.raises(ValueError, match="corrupt or mislabeled"):
            ChannelDataset.from_store(store, key)

    def test_disk_store_round_trip(self, dataset, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        key = dataset.store(store)
        fetched = ChannelDataset.from_store(store, key)
        assert fetched.content_key == key


class TestResolution:
    def test_resolves_a_file_path(self, dataset, tmp_path):
        path = str(tmp_path / "d.json")
        dataset.save(path)
        assert resolve_dataset(path).content_key == dataset.content_key

    def test_resolves_a_content_key_from_a_store(self, dataset):
        store = MemoryStore()
        key = dataset.store(store)
        resolved = resolve_dataset(key, store=store)
        assert resolved.content_key == key

    def test_resolves_a_content_key_from_the_datasets_dir(self, dataset,
                                                          tmp_path):
        key = dataset.content_key
        dataset.save(str(tmp_path / (key + ".json")))
        resolved = resolve_dataset(key, directory=str(tmp_path))
        assert resolved.content_key == key

    def test_mismatched_dataset_file_is_rejected(self, dataset, tmp_path):
        wrong_key = "0" * 64
        dataset.save(str(tmp_path / (wrong_key + ".json")))
        with pytest.raises(ValueError, match="hashes to"):
            resolve_dataset(wrong_key, directory=str(tmp_path))

    def test_missing_key_explains_how_to_acquire(self, tmp_path):
        with pytest.raises(ValueError, match="acquire"):
            resolve_dataset("f" * 64, directory=str(tmp_path))

    def test_garbage_reference_is_rejected(self):
        with pytest.raises(ValueError, match="neither"):
            resolve_dataset("not-a-path-nor-a-key")

    def test_reference_key_canonicalizes_path_and_key_alike(self, dataset,
                                                            tmp_path):
        path = str(tmp_path / "d.json")
        dataset.save(path)
        key = dataset.content_key
        assert dataset_reference_key(path) == key
        assert dataset_reference_key(key) == key   # no I/O needed

    def test_is_content_key_is_strict(self):
        assert is_content_key("a" * 64)
        assert not is_content_key("A" * 64)        # lowercase hex only
        assert not is_content_key("a" * 63)
        assert not is_content_key("g" * 64)
