"""Tests for the content-addressed result stores (repro.core.store)."""

import json
import os

import pytest

from repro.core.store import DiskStore, MemoryStore, RunStore

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return DiskStore(str(tmp_path / "store"))


class TestRunStoreContract:
    def test_both_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, RunStore)

    def test_put_get_roundtrip(self, store):
        value = {"ber": 1.5e-3, "curve": [1.0, 2.5], "label": "x",
                 "flag": True, "missing": None}
        store.put(KEY_A, value)
        assert KEY_A in store
        assert store.get(KEY_A) == value
        assert len(store) == 1

    def test_missing_key_raises_keyerror(self, store):
        assert KEY_A not in store
        with pytest.raises(KeyError):
            store.get(KEY_A)

    def test_overwrite_wins(self, store):
        store.put(KEY_A, 1.0)
        store.put(KEY_A, 2.0)
        assert store.get(KEY_A) == 2.0
        assert len(store) == 1

    def test_clear_reports_removed_count(self, store):
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0

    def test_info_reports_entries(self, store):
        store.put(KEY_A, [1, 2, 3])
        info = store.info()
        assert info["entries"] == 1
        assert info["backend"] in ("memory", "disk")

    def test_describe_is_cheap_identification(self, store):
        description = store.describe()
        assert description["backend"] in ("memory", "disk")
        assert "entries" not in description  # never walks the store


class TestDiskStore:
    def test_survives_a_new_store_instance(self, tmp_path):
        # The whole point: a second process opening the same directory
        # sees every stored value.
        root = str(tmp_path / "store")
        DiskStore(root).put(KEY_A, {"x": [1.5, float("inf")]})
        reopened = DiskStore(root)
        assert KEY_A in reopened
        assert reopened.get(KEY_A) == {"x": [1.5, float("inf")]}

    def test_values_are_canonical_json_files(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"b": 1, "a": (1, 2)})
        path = os.path.join(str(tmp_path / "store"), "objects", KEY_A[:2],
                            KEY_A + ".json")
        with open(path, "r", encoding="utf-8") as stream:
            assert stream.read() == '{"a":[1,2],"b":1}'
        assert store.info()["total_bytes"] > 0

    def test_sharded_layout_keeps_directories_small(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        objects = os.path.join(str(tmp_path / "store"), "objects")
        assert sorted(os.listdir(objects)) == [KEY_A[:2], KEY_B[:2]]
        assert len(store) == 2

    def test_numpy_values_are_coerced_on_put(self, tmp_path):
        import numpy as np

        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"x": np.float64(1.5), "n": np.arange(2)})
        assert store.get(KEY_A) == {"x": 1.5, "n": [0, 1]}

    def test_invalid_keys_rejected(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        for bad in ("", "..", ".hidden", f"a{os.sep}b"):
            with pytest.raises(ValueError):
                store.put(bad, 1)

    def test_no_temp_file_debris_after_put(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"x": 1})
        shard = os.path.join(str(tmp_path / "store"), "objects", KEY_A[:2])
        assert [name for name in os.listdir(shard)
                if name.endswith(".tmp")] == []

    def test_unserializable_value_fails_without_corrupting(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        with pytest.raises(TypeError):
            store.put(KEY_A, object())
        assert KEY_A not in store
        assert len(store) == 0
