"""Tests for the content-addressed result stores (repro.core.store)."""

import json
import os

import pytest

from repro.core.store import DiskStore, MemoryStore, RunStore

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return DiskStore(str(tmp_path / "store"))


class TestRunStoreContract:
    def test_both_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, RunStore)

    def test_put_get_roundtrip(self, store):
        value = {"ber": 1.5e-3, "curve": [1.0, 2.5], "label": "x",
                 "flag": True, "missing": None}
        store.put(KEY_A, value)
        assert KEY_A in store
        assert store.get(KEY_A) == value
        assert len(store) == 1

    def test_missing_key_raises_keyerror(self, store):
        assert KEY_A not in store
        with pytest.raises(KeyError):
            store.get(KEY_A)

    def test_overwrite_wins(self, store):
        store.put(KEY_A, 1.0)
        store.put(KEY_A, 2.0)
        assert store.get(KEY_A) == 2.0
        assert len(store) == 1

    def test_clear_reports_removed_count(self, store):
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0

    def test_info_reports_entries(self, store):
        store.put(KEY_A, [1, 2, 3])
        info = store.info()
        assert info["entries"] == 1
        assert info["backend"] in ("memory", "disk")

    def test_describe_is_cheap_identification(self, store):
        description = store.describe()
        assert description["backend"] in ("memory", "disk")
        assert "entries" not in description  # never walks the store


class TestDiskStore:
    def test_survives_a_new_store_instance(self, tmp_path):
        # The whole point: a second process opening the same directory
        # sees every stored value.
        root = str(tmp_path / "store")
        DiskStore(root).put(KEY_A, {"x": [1.5, float("inf")]})
        reopened = DiskStore(root)
        assert KEY_A in reopened
        assert reopened.get(KEY_A) == {"x": [1.5, float("inf")]}

    def test_values_are_canonical_json_files(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"b": 1, "a": (1, 2)})
        path = os.path.join(str(tmp_path / "store"), "objects", KEY_A[:2],
                            KEY_A + ".json")
        with open(path, "r", encoding="utf-8") as stream:
            assert stream.read() == '{"a":[1,2],"b":1}'
        assert store.info()["total_bytes"] > 0

    def test_sharded_layout_keeps_directories_small(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        objects = os.path.join(str(tmp_path / "store"), "objects")
        assert sorted(os.listdir(objects)) == [KEY_A[:2], KEY_B[:2]]
        assert len(store) == 2

    def test_numpy_values_are_coerced_on_put(self, tmp_path):
        import numpy as np

        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"x": np.float64(1.5), "n": np.arange(2)})
        assert store.get(KEY_A) == {"x": 1.5, "n": [0, 1]}

    def test_invalid_keys_rejected(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        for bad in ("", "..", ".hidden", f"a{os.sep}b"):
            with pytest.raises(ValueError):
                store.put(bad, 1)

    def test_no_temp_file_debris_after_put(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"x": 1})
        shard = os.path.join(str(tmp_path / "store"), "objects", KEY_A[:2])
        assert [name for name in os.listdir(shard)
                if name.endswith(".tmp")] == []

    def test_unserializable_value_fails_without_corrupting(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        with pytest.raises(TypeError):
            store.put(KEY_A, object())
        assert KEY_A not in store
        assert len(store) == 0


class TestDiskStoreGc:
    @staticmethod
    def _aged_store(tmp_path, now):
        """Three entries written 0 / 10 / 20 'days' before ``now``."""
        store = DiskStore(str(tmp_path / "store"))
        ages_days = {"a" * 64: 20, "b" * 64: 10, "c" * 64: 0}
        for key, age in ages_days.items():
            store.put(key, {"payload": key[:8]})
            mtime = now - age * 86400.0
            os.utime(store._path(key), (mtime, mtime))
        return store

    def test_age_bound_evicts_old_entries(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(max_age_days=15, now=now)
        assert report["removed"] == 1
        assert report["kept"] == 2
        assert "a" * 64 not in store
        assert "b" * 64 in store and "c" * 64 in store

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        entry_bytes = os.path.getsize(store._path("a" * 64))
        report = store.gc(max_total_bytes=entry_bytes, now=now)
        assert report["removed"] == 2
        assert report["remaining_bytes"] <= entry_bytes
        # The newest entry survives.
        assert "c" * 64 in store
        assert "a" * 64 not in store and "b" * 64 not in store

    def test_bounds_compose(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(max_age_days=15, max_total_bytes=0, now=now)
        assert report["removed"] == 3
        assert len(store) == 0

    def test_dry_run_removes_nothing(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(max_age_days=5, max_total_bytes=0, now=now,
                          dry_run=True)
        assert report["dry_run"] is True
        assert report["removed"] == 3
        assert len(store) == 3

    def test_no_bounds_keeps_everything(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(now=now)
        assert report["removed"] == 0
        assert report["kept"] == 3

    def test_rejects_negative_bounds(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        with pytest.raises(ValueError):
            store.gc(max_age_days=-1)
        with pytest.raises(ValueError):
            store.gc(max_total_bytes=-1)


class TestDiskStoreConcurrentWriters:
    def test_same_key_racing_writers_leave_a_complete_entry(self, tmp_path):
        # Regression: two processes computing the same content-addressed
        # point write the same key concurrently.  Whatever the
        # interleaving, the surviving file must be complete and readable
        # (atomic tempfile + os.replace), never truncated or interleaved.
        import multiprocessing

        root = str(tmp_path / "store")
        value = {"curve": list(range(500)), "label": "same-for-both"}
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        workers = [
            context.Process(target=_hammer_put,
                            args=(root, KEY_A, value, barrier))
            for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = DiskStore(root)
        assert store.get(KEY_A) == value
        shard = os.path.join(root, "objects", KEY_A[:2])
        assert [name for name in os.listdir(shard)
                if name.endswith(".tmp")] == []


def _hammer_put(root, key, value, barrier):
    """Worker for the concurrent-writer test (module-level: spawn picks
    it up by import)."""
    store = DiskStore(root)
    barrier.wait(timeout=30)
    for _ in range(50):
        store.put(key, value)
