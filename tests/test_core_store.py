"""Tests for the content-addressed result stores (repro.core.store)."""

import json
import os

import pytest

from repro.core.store import DiskStore, MemoryStore, RunStore

KEY_A = "a" * 64
KEY_B = "b" * 64


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return DiskStore(str(tmp_path / "store"))


class TestRunStoreContract:
    def test_both_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, RunStore)

    def test_put_get_roundtrip(self, store):
        value = {"ber": 1.5e-3, "curve": [1.0, 2.5], "label": "x",
                 "flag": True, "missing": None}
        store.put(KEY_A, value)
        assert KEY_A in store
        assert store.get(KEY_A) == value
        assert len(store) == 1

    def test_missing_key_raises_keyerror(self, store):
        assert KEY_A not in store
        with pytest.raises(KeyError):
            store.get(KEY_A)

    def test_overwrite_wins(self, store):
        store.put(KEY_A, 1.0)
        store.put(KEY_A, 2.0)
        assert store.get(KEY_A) == 2.0
        assert len(store) == 1

    def test_clear_reports_removed_count(self, store):
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0

    def test_info_reports_entries(self, store):
        store.put(KEY_A, [1, 2, 3])
        info = store.info()
        assert info["entries"] == 1
        assert info["backend"] in ("memory", "disk")

    def test_describe_is_cheap_identification(self, store):
        description = store.describe()
        assert description["backend"] in ("memory", "disk")
        assert "entries" not in description  # never walks the store


class TestDiskStore:
    def test_survives_a_new_store_instance(self, tmp_path):
        # The whole point: a second process opening the same directory
        # sees every stored value.
        root = str(tmp_path / "store")
        DiskStore(root).put(KEY_A, {"x": [1.5, float("inf")]})
        reopened = DiskStore(root)
        assert KEY_A in reopened
        assert reopened.get(KEY_A) == {"x": [1.5, float("inf")]}

    def test_values_are_canonical_json_files(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"b": 1, "a": (1, 2)})
        path = os.path.join(str(tmp_path / "store"), "objects", KEY_A[:2],
                            KEY_A + ".json")
        with open(path, "r", encoding="utf-8") as stream:
            assert stream.read() == '{"a":[1,2],"b":1}'
        assert store.info()["total_bytes"] > 0

    def test_sharded_layout_keeps_directories_small(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        objects = os.path.join(str(tmp_path / "store"), "objects")
        assert sorted(os.listdir(objects)) == [KEY_A[:2], KEY_B[:2]]
        assert len(store) == 2

    def test_numpy_values_are_coerced_on_put(self, tmp_path):
        import numpy as np

        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"x": np.float64(1.5), "n": np.arange(2)})
        assert store.get(KEY_A) == {"x": 1.5, "n": [0, 1]}

    def test_invalid_keys_rejected(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        for bad in ("", "..", ".hidden", f"a{os.sep}b"):
            with pytest.raises(ValueError):
                store.put(bad, 1)

    def test_no_temp_file_debris_after_put(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        store.put(KEY_A, {"x": 1})
        shard = os.path.join(str(tmp_path / "store"), "objects", KEY_A[:2])
        assert [name for name in os.listdir(shard)
                if name.endswith(".tmp")] == []

    def test_unserializable_value_fails_without_corrupting(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        with pytest.raises(TypeError):
            store.put(KEY_A, object())
        assert KEY_A not in store
        assert len(store) == 0


class TestDiskStoreGc:
    @staticmethod
    def _aged_store(tmp_path, now):
        """Three entries written 0 / 10 / 20 'days' before ``now``."""
        store = DiskStore(str(tmp_path / "store"))
        ages_days = {"a" * 64: 20, "b" * 64: 10, "c" * 64: 0}
        for key, age in ages_days.items():
            store.put(key, {"payload": key[:8]})
            mtime = now - age * 86400.0
            os.utime(store._path(key), (mtime, mtime))
        return store

    def test_age_bound_evicts_old_entries(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(max_age_days=15, now=now)
        assert report["removed"] == 1
        assert report["kept"] == 2
        assert "a" * 64 not in store
        assert "b" * 64 in store and "c" * 64 in store

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        entry_bytes = os.path.getsize(store._path("a" * 64))
        report = store.gc(max_total_bytes=entry_bytes, now=now)
        assert report["removed"] == 2
        assert report["remaining_bytes"] <= entry_bytes
        # The newest entry survives.
        assert "c" * 64 in store
        assert "a" * 64 not in store and "b" * 64 not in store

    def test_bounds_compose(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(max_age_days=15, max_total_bytes=0, now=now)
        assert report["removed"] == 3
        assert len(store) == 0

    def test_dry_run_removes_nothing(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(max_age_days=5, max_total_bytes=0, now=now,
                          dry_run=True)
        assert report["dry_run"] is True
        assert report["removed"] == 3
        assert len(store) == 3

    def test_no_bounds_keeps_everything(self, tmp_path):
        now = 1_700_000_000.0
        store = self._aged_store(tmp_path, now)
        report = store.gc(now=now)
        assert report["removed"] == 0
        assert report["kept"] == 3

    def test_rejects_negative_bounds(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        with pytest.raises(ValueError):
            store.gc(max_age_days=-1)
        with pytest.raises(ValueError):
            store.gc(max_total_bytes=-1)


class TestDiskStoreConcurrentWriters:
    def test_same_key_racing_writers_leave_a_complete_entry(self, tmp_path):
        # Regression: two processes computing the same content-addressed
        # point write the same key concurrently.  Whatever the
        # interleaving, the surviving file must be complete and readable
        # (atomic tempfile + os.replace), never truncated or interleaved.
        import multiprocessing

        root = str(tmp_path / "store")
        value = {"curve": list(range(500)), "label": "same-for-both"}
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        workers = [
            context.Process(target=_hammer_put,
                            args=(root, KEY_A, value, barrier))
            for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = DiskStore(root)
        assert store.get(KEY_A) == value
        shard = os.path.join(root, "objects", KEY_A[:2])
        assert [name for name in os.listdir(shard)
                if name.endswith(".tmp")] == []


def _hammer_put(root, key, value, barrier):
    """Worker for the concurrent-writer test (module-level: spawn picks
    it up by import)."""
    store = DiskStore(root)
    barrier.wait(timeout=30)
    for _ in range(50):
        store.put(key, value)


class TestDiskStoreConcurrentReaders:
    def test_readers_race_an_active_writer_without_torn_reads(self,
                                                              tmp_path):
        # Readers in other processes while a writer fills the store:
        # every successful get must be a complete, self-consistent value
        # (atomic rename), and a not-yet-written key is a clean
        # KeyError — never a truncated or interleaved read.
        import multiprocessing

        root = str(tmp_path / "store")
        DiskStore(root)  # create the layout before the readers start
        keys = [f"{index:064x}" for index in range(24)]
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(3)
        readers = [
            context.Process(target=_hammer_get, args=(root, keys, barrier))
            for _ in range(2)]
        writer = context.Process(target=_fill_store,
                                 args=(root, keys, barrier))
        for process in readers + [writer]:
            process.start()
        for process in readers + [writer]:
            process.join(timeout=120)
            assert process.exitcode == 0
        # Afterwards the store is complete and consistent.
        store = DiskStore(root)
        assert len(store) == len(keys)
        for key in keys:
            value = store.get(key)
            assert value["key"] == key
            assert value["curve"] == list(range(200))

    def test_len_and_info_stay_correct_under_external_writes(self,
                                                             tmp_path):
        # A second handle (stand-in for another process) writes while
        # this handle's manifests are warm: the mtime token must
        # invalidate them.
        root = str(tmp_path / "store")
        reader = DiskStore(root)
        writer = DiskStore(root)
        writer.put(KEY_A, {"x": 1})
        assert reader.info()["entries"] == 1   # manifests now warm
        writer.put(KEY_B, {"x": 2})
        writer.put("a" * 63 + "c", {"x": 3})   # same shard as KEY_A
        assert len(reader) == 3
        assert reader.info()["entries"] == 3


def _fill_store(root, keys, barrier):
    """Writer for the reader-race test (module-level: spawn imports it)."""
    store = DiskStore(root)
    barrier.wait(timeout=30)
    for key in keys:
        store.put(key, {"key": key, "curve": list(range(200))})


def _hammer_get(root, keys, barrier):
    """Reader for the reader-race test: a get may miss (KeyError) but a
    hit must be complete and self-consistent."""
    store = DiskStore(root)
    barrier.wait(timeout=30)
    seen = set()
    while len(seen) < len(keys):
        for key in keys:
            try:
                value = store.get(key)
            except KeyError:
                continue
            assert value["key"] == key
            assert value["curve"] == list(range(200))
            seen.add(key)


class TestDiskStoreManifests:
    @staticmethod
    def _walk_objects(root):
        entries = 0
        total_bytes = 0
        for parent, _, names in os.walk(os.path.join(root, "objects")):
            for name in names:
                if name.endswith(".json"):
                    entries += 1
                    total_bytes += os.path.getsize(
                        os.path.join(parent, name))
        return entries, total_bytes

    def test_info_matches_an_exhaustive_walk(self, tmp_path):
        root = str(tmp_path / "store")
        store = DiskStore(root)
        for index in range(12):
            store.put(f"{index:064x}", {"payload": index * 100})
        info = store.info()
        entries, total_bytes = self._walk_objects(root)
        assert info["entries"] == entries == 12
        assert info["total_bytes"] == total_bytes
        assert info["shards"] == len(os.listdir(
            os.path.join(root, "objects")))

    def test_manifest_files_are_written_and_reused(self, tmp_path):
        root = str(tmp_path / "store")
        store = DiskStore(root)
        store.put(KEY_A, {"x": 1})
        store.info()
        manifest_dir = os.path.join(root, "manifest")
        manifest_path = os.path.join(manifest_dir, KEY_A[:2] + ".json")
        assert os.path.exists(manifest_path)
        with open(manifest_path, encoding="utf-8") as stream:
            manifest = json.load(stream)
        assert manifest["entries"] == 1
        assert manifest["total_bytes"] > 0
        assert "token" in manifest
        # A second info() trusts the manifest: the file is untouched.
        before = os.stat(manifest_path).st_mtime_ns
        assert store.info()["entries"] == 1
        assert os.stat(manifest_path).st_mtime_ns == before

    def test_corrupt_manifest_is_rebuilt(self, tmp_path):
        root = str(tmp_path / "store")
        store = DiskStore(root)
        store.put(KEY_A, {"x": 1})
        store.info()
        manifest_path = os.path.join(root, "manifest",
                                     KEY_A[:2] + ".json")
        with open(manifest_path, "w", encoding="utf-8") as stream:
            stream.write("{not json")
        assert store.info()["entries"] == 1
        with open(manifest_path, encoding="utf-8") as stream:
            assert json.load(stream)["entries"] == 1

    def test_gc_keeps_manifests_consistent(self, tmp_path):
        now = 1_700_000_000.0
        store = DiskStore(str(tmp_path / "store"))
        for key, age in {"a" * 64: 20, "b" * 64: 10, "c" * 64: 0}.items():
            store.put(key, {"payload": key[:8]})
            mtime = now - age * 86400.0
            os.utime(store._path(key), (mtime, mtime))
        assert store.info()["entries"] == 3    # manifests warm
        report = store.gc(max_age_days=15, now=now)
        assert report["removed"] == 1
        info = store.info()
        entries, total_bytes = self._walk_objects(str(tmp_path / "store"))
        assert info["entries"] == entries == 2
        assert info["total_bytes"] == total_bytes

    def test_clear_resets_manifests(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        for index in range(4):
            store.put(f"{index:064x}", {"payload": index})
        assert store.info()["entries"] == 4
        assert store.clear() == 4
        assert store.info()["entries"] == 0
        assert len(store) == 0
