"""Unit tests for repro.utils.rng and repro.utils.validation."""

import json

import numpy as np
import pytest

from repro.utils import ensure_rng
from repro.utils.validation import (
    check_choice,
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_reproducible(self):
        a = ensure_rng(42).standard_normal(8)
        b = ensure_rng(42).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).standard_normal(8)
        b = ensure_rng(2).standard_normal(8)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        with pytest.raises(ValueError):
            check_probability("p", -0.01)

    def test_check_in_range(self):
        assert check_in_range("x", 3.0, 1.0, 5.0) == 3.0
        with pytest.raises(ValueError):
            check_in_range("x", 6.0, 1.0, 5.0)

    def test_check_power_of_two(self):
        for value in (1, 2, 4, 1024):
            assert check_power_of_two("n", value) == value
        for value in (0, 3, -4, 6):
            with pytest.raises(ValueError):
                check_power_of_two("n", value)

    def test_check_choice(self):
        assert check_choice("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            check_choice("mode", "c", ("a", "b"))


class TestJsonify:
    def test_non_finite_floats_become_string_sentinels(self):
        from repro.utils.serialization import jsonify

        payload = {"a": float("inf"), "b": [float("-inf"), float("nan")],
                   "c": {"nested": 1.5}, "d": "text", "e": None}
        cleaned = jsonify(payload)
        assert cleaned == {"a": "Infinity", "b": ["-Infinity", "NaN"],
                           "c": {"nested": 1.5}, "d": "text", "e": None}
        # The result round-trips through a strict JSON serializer.
        json.dumps(cleaned, allow_nan=False)

    def test_finite_payloads_pass_through_unchanged(self):
        from repro.utils.serialization import jsonify

        payload = {"x": [1, 2.5, True, "s", None]}
        assert jsonify(payload) == payload
