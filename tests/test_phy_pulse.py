"""Unit tests for repro.phy.pulse and repro.phy.quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.pulse import (
    Pulse,
    raised_cosine_tail_pulse,
    ramp_pulse,
    rectangular_pulse,
    sequence_optimized_pulse,
    suboptimal_unique_detection_pulse,
    symbolwise_optimized_pulse,
)
from repro.phy.quantizer import OneBitQuantizer, UniformQuantizer


class TestPulseBasics:
    def test_rectangular_pulse_span(self):
        pulse = rectangular_pulse(5)
        assert pulse.span_symbols == 1
        assert pulse.memory == 0
        assert pulse.oversampling == 5

    def test_normalisation_unit_power(self):
        for factory in (rectangular_pulse, suboptimal_unique_detection_pulse,
                        symbolwise_optimized_pulse, sequence_optimized_pulse):
            pulse = factory(5) if factory is rectangular_pulse else factory()
            assert pulse.average_power_per_sample == pytest.approx(1.0)

    def test_tap_matrix_shape(self):
        pulse = sequence_optimized_pulse()
        assert pulse.tap_matrix.shape == (2, 5)
        np.testing.assert_allclose(pulse.tap_matrix.reshape(-1), pulse.taps)

    def test_delay_axis_in_symbol_periods(self):
        pulse = suboptimal_unique_detection_pulse()
        axis = pulse.delay_axis()
        assert axis[0] == 0.0
        assert axis[-1] == pytest.approx(2.0 - 1.0 / 5.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Pulse(taps=np.ones(7), oversampling=5)
        with pytest.raises(ValueError):
            Pulse(taps=np.zeros(5), oversampling=5)
        with pytest.raises(ValueError):
            Pulse(taps=np.ones(5), oversampling=0)

    def test_fig5_designs_span_two_symbols(self):
        # Fig. 5(b)-(d): the designed ISI overlaps exactly one extra symbol.
        assert symbolwise_optimized_pulse().span_symbols == 2
        assert sequence_optimized_pulse().span_symbols == 2
        assert suboptimal_unique_detection_pulse().span_symbols == 2

    def test_shipped_designs_only_for_5x(self):
        with pytest.raises(ValueError):
            symbolwise_optimized_pulse(oversampling=4)
        with pytest.raises(ValueError):
            sequence_optimized_pulse(oversampling=3)
        with pytest.raises(ValueError):
            suboptimal_unique_detection_pulse(oversampling=2)


class TestWaveform:
    def test_single_symbol_waveform_is_scaled_taps(self):
        pulse = rectangular_pulse(5)
        waveform = pulse.waveform(np.array([2.0]))
        np.testing.assert_allclose(waveform, 2.0 * pulse.taps)

    def test_waveform_length(self):
        pulse = sequence_optimized_pulse()
        waveform = pulse.waveform(np.ones(7))
        assert waveform.shape == (35,)

    def test_superposition(self):
        pulse = sequence_optimized_pulse()
        a = pulse.waveform(np.array([1.0, 0.0, 0.0]))
        b = pulse.waveform(np.array([0.0, -1.0, 0.0]))
        combined = pulse.waveform(np.array([1.0, -1.0, 0.0]))
        np.testing.assert_allclose(combined, a + b, atol=1e-12)

    def test_sample_means_match_waveform_steady_state(self):
        pulse = sequence_optimized_pulse()
        symbols = np.array([0.5, -1.0, 1.2])
        waveform = pulse.waveform(symbols)
        # Third symbol period: window [a_2, a_1].
        expected = pulse.sample_means(np.array([1.2, -1.0]))
        np.testing.assert_allclose(waveform[10:15], expected, atol=1e-12)

    def test_sample_means_window_validation(self):
        with pytest.raises(ValueError):
            sequence_optimized_pulse().sample_means(np.array([1.0]))

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=20)
    def test_ramp_pulse_valid_for_any_shape(self, oversampling, span):
        pulse = ramp_pulse(oversampling, span)
        assert pulse.span_symbols == span
        assert pulse.average_power_per_sample == pytest.approx(1.0)


class TestFactories:
    def test_raised_cosine_zero_tail_is_rectangular(self):
        pulse = raised_cosine_tail_pulse(5, tail_fraction=0.0)
        matrix = pulse.tap_matrix
        np.testing.assert_allclose(matrix[1], 0.0, atol=1e-12)

    def test_raised_cosine_invalid_fraction(self):
        with pytest.raises(ValueError):
            raised_cosine_tail_pulse(5, tail_fraction=1.5)

    def test_ramp_pulse_invalid_span(self):
        with pytest.raises(ValueError):
            ramp_pulse(5, 0)

    def test_designed_pulses_have_nonzero_tails(self):
        # Fig. 5(b)-(d) all show energy in the following symbol period.
        for factory in (symbolwise_optimized_pulse, sequence_optimized_pulse,
                        suboptimal_unique_detection_pulse):
            tail = factory().tap_matrix[1]
            assert np.max(np.abs(tail)) > 0.1


class TestQuantizers:
    def test_one_bit_signs(self):
        quantizer = OneBitQuantizer()
        np.testing.assert_array_equal(
            quantizer(np.array([-0.3, 0.2, 0.0, 5.0])), [-1, 1, -1, 1])

    def test_one_bit_threshold(self):
        quantizer = OneBitQuantizer(threshold=1.0)
        np.testing.assert_array_equal(quantizer(np.array([0.5, 1.5])), [-1, 1])

    def test_one_bit_metadata(self):
        assert OneBitQuantizer().bits == 1
        assert OneBitQuantizer().n_levels == 2

    def test_uniform_quantizer_level_count(self):
        quantizer = UniformQuantizer(bits=3, full_scale=1.0)
        assert quantizer.n_levels == 8
        assert quantizer.levels().shape == (8,)

    def test_uniform_quantizer_reconstruction_error_bound(self):
        quantizer = UniformQuantizer(bits=6, full_scale=2.0)
        samples = np.linspace(-1.9, 1.9, 101)
        error = np.abs(quantizer(samples) - samples)
        assert np.max(error) <= quantizer.step / 2.0 + 1e-12

    def test_uniform_quantizer_clips(self):
        quantizer = UniformQuantizer(bits=2, full_scale=1.0)
        assert quantizer(np.array([10.0]))[0] <= 1.0
        assert quantizer(np.array([-10.0]))[0] >= -1.0

    def test_uniform_quantizer_validation(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=0)
        with pytest.raises(ValueError):
            UniformQuantizer(bits=4, full_scale=0.0)

    def test_more_bits_reduce_error(self):
        samples = np.linspace(-1.5, 1.5, 333)
        coarse = UniformQuantizer(bits=2)
        fine = UniformQuantizer(bits=6)
        assert np.mean((fine(samples) - samples) ** 2) < \
            np.mean((coarse(samples) - samples) ** 2)
