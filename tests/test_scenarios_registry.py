"""Tests for the scenario registry, Scenario execution and ScenarioResult."""

import glob
import json
import os
import re

import numpy as np
import pytest

import repro
from repro.core.engine import SweepEngine
from repro.scenarios import (
    ChannelSpec,
    build_scenario,
    describe_scenario,
    run_scenario,
    scenario_entries,
    scenario_names,
)

BENCHMARK_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                             "benchmarks")


#: The cross-layer NoC engine scenarios added with the unified NocModel
#: refactor — all four must stay registered.
NOC_ENGINE_SCENARIOS = {
    "noc-hotspot-sweep",
    "noc-transpose-crosscheck",
    "noc-buffer-depth-sweep",
    "noc-lossy-link-sweep",
}

#: The waveform-level transceiver pipeline scenarios added with the
#: ChannelFrontend refactor — all three must stay registered.
PHY_FRONTEND_SCENARIOS = {
    "coded-ber-waveform-sweep",
    "phy-detector-comparison",
    "phy-oversampling-coding-ablation",
}


class TestRegistryCompleteness:
    def test_at_least_25_scenarios(self):
        assert len(scenario_names()) >= 25

    def test_cross_layer_noc_scenarios_registered(self):
        names = set(scenario_names())
        missing = NOC_ENGINE_SCENARIOS - names
        assert not missing, f"missing cross-layer NoC scenarios: {missing}"

    def test_cross_layer_noc_scenarios_build_and_describe(self):
        for name in sorted(NOC_ENGINE_SCENARIOS):
            description = describe_scenario(name)
            assert description["scenario"] == name
            assert description["n_points"] > 0
            assert "noc" in "".join(description["specs"])

    def test_lossy_link_sweep_accepts_loss_knob_overrides(self):
        # Regression: a --set noc.ebn0_db / noc.link_error_rate override
        # used to trip NocSpec's mutual-exclusion check inside the worker
        # (the swept ebn0_db replace kept the user's other knob).
        for overrides in ({"noc.ebn0_db": 3.0},
                          {"noc.link_error_rate": 0.05}):
            scenario = build_scenario("noc-lossy-link-sweep", overrides)
            value = scenario.worker({"ebn0_db": 4.0},
                                    np.random.default_rng(0))
            assert value["link_flit_error_rate"] < 1e-6

    def test_phy_frontend_scenarios_registered_and_describable(self):
        names = set(scenario_names())
        missing = PHY_FRONTEND_SCENARIOS - names
        assert not missing, f"missing waveform-pipeline scenarios: {missing}"
        for name in sorted(PHY_FRONTEND_SCENARIOS):
            description = describe_scenario(name)
            assert description["n_points"] > 0
            assert "phy" in description["specs"]
            assert "coding" in description["specs"]

    def test_coded_ber_waveform_sweep_shows_the_frontend_offset(self):
        # One cheap worker call per frontend at an Eb/N0 where the BPSK
        # baseline is already clean: the waveform PHY must not be (the
        # positive-offset half of the acceptance criterion; the finite
        # half is covered at 16 dB in tests/test_phy_frontend.py).
        scenario = build_scenario("coded-ber-waveform-sweep",
                                  {"mc.n_codewords": 4})
        bpsk = scenario.worker({"frontend": "bpsk-awgn", "ebn0_db": 3.5},
                               np.random.default_rng(0))
        wave = scenario.worker({"frontend": "one-bit-waveform",
                                "ebn0_db": 3.5}, np.random.default_rng(0))
        assert bpsk["bit_error_rate"] < 1e-3
        assert wave["bit_error_rate"] > 0.05
        assert wave["bits_per_channel_use"] == 2.0
        assert wave["samples_per_bit"] == pytest.approx(2.5)

    def test_detector_comparison_worker_orders_the_demods(self):
        scenario = build_scenario("phy-detector-comparison",
                                  {"mc.n_codewords": 4})
        bcjr = scenario.worker({"detector": "bcjr", "ebn0_db": 14.0},
                               np.random.default_rng(1))
        symbolwise = scenario.worker({"detector": "symbolwise",
                                      "ebn0_db": 14.0},
                                     np.random.default_rng(1))
        assert bcjr["bit_error_rate"] < symbolwise["bit_error_rate"]

    def test_oversampling_ablation_reports_threshold_and_ber(self):
        scenario = build_scenario("phy-oversampling-coding-ablation",
                                  {"mc.n_codewords": 2})
        value = scenario.worker({"oversampling": 3, "window_size": 3,
                                 "ebn0_db": 14.0}, np.random.default_rng(2))
        assert 0.0 <= value["bit_error_rate"] <= 0.5
        assert value["samples_per_bit"] == pytest.approx(1.5)
        assert value["de_threshold_ebn0_db"] > 0.0

    def test_every_benchmark_figure_has_a_scenario(self):
        # Benchmark files are named test_bench_<artifact>_*.py; every
        # figure/table artifact must be runnable by name.
        names = set(scenario_names())
        artifacts = set()
        pattern = re.compile(r"test_bench_(fig\d+[ab]?|table\d+)_")
        for path in glob.glob(os.path.join(BENCHMARK_DIR, "test_bench_*.py")):
            match = pattern.search(os.path.basename(path))
            if match:
                artifacts.add(match.group(1))
        assert artifacts, "no figure benchmarks found"
        missing = artifacts - names
        assert not missing, f"benchmark artifacts without a scenario: {missing}"

    def test_all_paper_figures_present(self):
        names = set(scenario_names())
        expected = {f"fig{i}" for i in range(1, 11)} | {"fig8a", "fig8b",
                                                        "table1"}
        assert expected <= names

    def test_at_least_four_off_paper_scenarios(self):
        off_paper = [entry for entry in scenario_entries()
                     if entry.artifact == "off-paper"]
        assert len(off_paper) >= 4

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_scenario("fig99")


class TestBuildAndOverrides:
    def test_build_returns_scenario_with_points_and_specs(self):
        scenario = build_scenario("fig4")
        assert scenario.points
        assert "channel" in scenario.specs
        description = scenario.describe()
        assert description["n_points"] == len(scenario.points)
        assert "target_snr_db" in description["axes"]

    def test_spec_override_is_applied(self):
        scenario = build_scenario("fig4",
                                  {"channel.rx_noise_figure_db": 7.0})
        assert scenario.specs["channel"].rx_noise_figure_db == 7.0
        # 3 dB less noise figure -> 3 dB less required transmit power.
        base = run_scenario("fig4").value_where(target_snr_db=20.0)
        quiet = scenario.run().value_where(target_snr_db=20.0)
        assert quiet["short_dbm"] == pytest.approx(base["short_dbm"] - 3.0)

    def test_unconsumed_override_raises(self):
        with pytest.raises(ValueError, match="does not accept override"):
            build_scenario("fig4", {"noc.service_time_cycles": 1.0})

    def test_invalid_override_value_raises(self):
        with pytest.raises(ValueError):
            build_scenario("fig4", {"channel.distance_m": -1.0})

    def test_describe_scenario_helper(self):
        assert describe_scenario("table1")["scenario"] == "table1"


class TestScenarioResult:
    def test_provenance_fields(self):
        result = run_scenario("table1", rng=7)
        assert result.name == "table1"
        assert result.artifact == "Table I"
        assert result.seed == 7
        assert result.version == repro.__version__
        assert len(result) == len(result.points)
        assert [point["spawn_key"] for point in result.points] == \
            [[index] for index in range(len(result))]
        payload = result.to_dict()
        assert payload["specs"]["channel"]["spec_type"] == "ChannelSpec"
        restored = ChannelSpec.from_dict(
            {key: value
             for key, value in payload["specs"]["channel"].items()
             if key != "spec_type"})
        assert restored == result.specs["channel"]

    def test_unseeded_run_records_no_seed(self):
        assert run_scenario("table1").seed is None

    def test_json_is_parseable_and_deterministic(self):
        first = run_scenario("fig7", rng=0)
        second = run_scenario("fig7", rng=0)
        assert first.to_json() == second.to_json()
        payload = json.loads(first.to_json())
        assert payload["scenario"] == "fig7"
        assert payload["n_points"] == len(first)

    def test_infinite_latencies_export_as_strict_json(self):
        # fig8a's analytic curves contain inf past saturation; the JSON
        # export must stay strictly valid (no bare Infinity tokens) and
        # represent them as the "Infinity" string sentinel.
        text = run_scenario("fig8a").to_json()

        def reject(token):  # pragma: no cover - called only on regression
            raise AssertionError(f"bare non-finite token {token!r} in JSON")

        payload = json.loads(text, parse_constant=reject)
        latencies = payload["points"][0]["value"]["mean_latency_cycles"]
        assert "Infinity" in latencies

    def test_fixed_seed_reproducibility_of_stochastic_scenario(self):
        # fig1 fits pathloss exponents from VNA noise drawn through the
        # engine-spawned generators: same seed, same fits — bit for bit.
        first = run_scenario("fig1", rng=5)
        second = run_scenario("fig1", rng=5)
        assert first.to_json() == second.to_json()
        different = run_scenario("fig1", rng=6)
        assert different.values() != first.values()

    def test_value_where_and_series(self):
        result = run_scenario("fig4")
        row = result.value_where(target_snr_db=20.0)
        assert row["long_butler_dbm"] == pytest.approx(
            row["long_dbm"] + 5.0)
        series = result.series("target_snr_db")
        assert series[20.0] == row
        with pytest.raises(KeyError):
            result.value_where(target_snr_db=123.0)
        with pytest.raises(ValueError):
            result.value_where()

    def test_shared_engine_serves_cache_across_runs(self):
        engine = SweepEngine()
        scenario = build_scenario("table1")
        scenario.run(rng=3, engine=engine)
        assert engine.cache_info()["hits"] == 0
        scenario.run(rng=3, engine=engine)
        assert engine.cache_info()["hits"] == len(scenario.points)

    def test_equivalent_scenarios_share_cached_points(self):
        # Content-addressed keys: a *rebuilt* scenario (new Scenario, new
        # worker object) against a shared store hits every point — the
        # historical object-identity cache could never do this.
        from repro.core.store import MemoryStore

        store = MemoryStore()
        cold = run_scenario("fig1", rng=5, store=store)
        warm = run_scenario("fig1", rng=5, store=store)
        assert warm.execution["cache_hits"] == len(warm)
        assert warm.execution["cache_misses"] == 0
        assert cold.values() == warm.values()

    def test_cold_and_warm_runs_export_byte_identical_json(self, tmp_path):
        # Regression: cache provenance must never leak into the
        # deterministic payload — a warm re-run from a DiskStore (fresh
        # store object, as a new process would build) serializes byte-for-
        # byte identically to the cold run at the same seed.
        from repro.core.store import DiskStore

        root = str(tmp_path / "store")
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        cold = run_scenario("fig1", rng=5, store=DiskStore(root))
        warm = run_scenario("fig1", rng=5, store=DiskStore(root))
        cold.save_json(str(cold_path))
        warm.save_json(str(warm_path))
        assert cold_path.read_bytes() == warm_path.read_bytes()
        # The provenance lives in the separate execution block instead.
        assert cold.execution["from_cache"] == [False, False]
        assert warm.execution["from_cache"] == [True, True]
        assert warm.to_dict(include_execution=True)["execution"][
            "cache_hits"] == 2
        assert "execution" not in json.loads(warm.to_json())

    def test_sanity_of_off_paper_link_sweep(self):
        result = run_scenario("tx-power-sweep")
        reports = result.series("tx_power_dbm")
        # More transmit power never hurts SNR or data rate.
        powers = sorted(reports)
        snrs = [reports[power]["snr_db"] for power in powers]
        assert snrs == sorted(snrs)
        assert reports[powers[-1]]["closes"]
