"""Tests for the vectorized trellis kernel (repro.phy.trellis)."""

import numpy as np
import pytest

from repro.phy.channel_model import OversampledOneBitChannel
from repro.phy.modulation import AskConstellation
from repro.phy.pulse import ramp_pulse, rectangular_pulse, \
    sequence_optimized_pulse
from repro.phy.receiver import (
    SymbolBySymbolDetector,
    ViterbiSequenceDetector,
    viterbi_loop_reference,
)
from repro.phy.trellis import TrellisKernel


def _channel(pulse, snr_db, order=4):
    return OversampledOneBitChannel(pulse=pulse,
                                    constellation=AskConstellation(order),
                                    snr_db=snr_db)


CONFIGURATIONS = (
    # (pulse, order, snr_db) — memory 1 @ 4-ASK, memory 2 @ 4-ASK,
    # memory 2 @ 2-ASK, short oversampling.
    (sequence_optimized_pulse(), 4, 15.0),
    (ramp_pulse(5, 3), 4, 20.0),
    (ramp_pulse(5, 3), 2, 10.0),
    (ramp_pulse(3, 2), 4, 8.0),
)


class TestVectorizedViterbi:
    @pytest.mark.parametrize("pulse,order,snr_db", CONFIGURATIONS)
    def test_matches_loop_reference_on_random_sequences(self, pulse, order,
                                                        snr_db):
        channel = _channel(pulse, snr_db, order)
        kernel = TrellisKernel(channel)
        for seed in range(3):
            _, signs = channel.simulate(120, rng=seed)
            log_obs = channel.log_observation_probabilities(signs)
            vectorized = kernel.viterbi(log_obs)
            reference = viterbi_loop_reference(channel, log_obs)
            np.testing.assert_array_equal(vectorized, reference)

    def test_detector_uses_vectorized_kernel_and_matches_reference(self):
        channel = _channel(sequence_optimized_pulse(), 18.0)
        _, signs = channel.simulate(400, rng=7)
        detector = ViterbiSequenceDetector(channel)
        np.testing.assert_array_equal(detector.detect(signs),
                                      detector.detect_reference(signs))

    def test_batch_equals_scalar(self):
        channel = _channel(ramp_pulse(5, 3), 14.0)
        detector = ViterbiSequenceDetector(channel)
        signs = np.stack([channel.simulate(80, rng=seed)[1]
                          for seed in range(5)])
        batch = detector.detect(signs)
        assert batch.shape == (5, 80)
        for row in range(5):
            np.testing.assert_array_equal(batch[row],
                                          detector.detect(signs[row]))

    def test_batched_symbol_error_rate_skips_each_rows_transient(self):
        # Regression: with a (B, n) batch the skip must discard the first
        # `memory` symbols of EVERY row, not just of the flattened stream.
        channel = _channel(sequence_optimized_pulse(), 30.0)
        detector = ViterbiSequenceDetector(channel)
        pairs = [channel.simulate(200, rng=seed) for seed in range(4)]
        indices = np.stack([indices for indices, _ in pairs])
        signs = np.stack([signs for _, signs in pairs])
        batched = detector.symbol_error_rate(indices, signs)
        per_row = np.mean([detector.symbol_error_rate(*pair)
                           for pair in pairs])
        assert batched == pytest.approx(per_row)

    def test_memoryless_channel_reduces_to_argmax(self):
        channel = _channel(rectangular_pulse(1), 12.0, order=2)
        assert channel.memory == 0
        kernel = TrellisKernel(channel)
        _, signs = channel.simulate(50, rng=0)
        log_obs = channel.log_observation_probabilities(signs)
        np.testing.assert_array_equal(kernel.viterbi(log_obs),
                                      np.argmax(log_obs[:, 0, :], axis=-1))

    def test_invalid_shapes_and_initial_rejected(self):
        channel = _channel(sequence_optimized_pulse(), 15.0)
        kernel = TrellisKernel(channel)
        with pytest.raises(ValueError):
            kernel.viterbi(np.zeros((4, 4)))
        _, signs = channel.simulate(10, rng=0)
        log_obs = channel.log_observation_probabilities(signs)
        with pytest.raises(ValueError):
            kernel.viterbi(log_obs, initial="magic")


class TestMaxLogBcjr:
    def test_posterior_argmax_tracks_viterbi_at_high_snr(self):
        # At high SNR the max-log APP argmax and the ML sequence agree on
        # (essentially) every symbol.
        channel = _channel(sequence_optimized_pulse(), 30.0)
        kernel = TrellisKernel(channel)
        indices, signs = channel.simulate(600, rng=3)
        log_obs = channel.log_observation_probabilities(signs)
        app = kernel.symbol_log_posteriors(log_obs)
        soft = np.argmax(app, axis=-1)
        hard = kernel.viterbi(log_obs)
        assert np.mean(soft != hard) < 0.01
        assert np.mean(soft != indices) < 0.01

    def test_batch_equals_scalar(self):
        channel = _channel(ramp_pulse(5, 3), 12.0)
        kernel = TrellisKernel(channel)
        signs = np.stack([channel.simulate(60, rng=seed)[1]
                          for seed in range(4)])
        log_obs = channel.log_observation_probabilities(signs)
        batch = kernel.symbol_log_posteriors(log_obs)
        assert batch.shape == (4, 60, channel.order)
        for row in range(4):
            np.testing.assert_allclose(
                batch[row], kernel.symbol_log_posteriors(log_obs[row]),
                atol=1e-12)

    def test_rows_are_normalised_to_zero_max(self):
        channel = _channel(sequence_optimized_pulse(), 10.0)
        kernel = TrellisKernel(channel)
        _, signs = channel.simulate(40, rng=1)
        app = kernel.symbol_log_posteriors(
            channel.log_observation_probabilities(signs))
        np.testing.assert_allclose(app.max(axis=-1), 0.0, atol=1e-12)
        assert np.all(app <= 1e-12)


class TestSymbolwiseMarginals:
    def test_matches_naive_mean_when_no_underflow(self):
        channel = _channel(sequence_optimized_pulse(), 12.0)
        kernel = TrellisKernel(channel)
        _, signs = channel.simulate(100, rng=2)
        log_obs = channel.log_observation_probabilities(signs)
        naive = np.log(np.exp(log_obs).mean(axis=1))
        np.testing.assert_allclose(kernel.symbolwise_log_marginals(log_obs),
                                   naive, atol=1e-9)

    def test_underflow_regression_high_snr_long_blocks(self):
        # 30 samples/symbol at 40 dB SNR: wrong-candidate observation
        # log-probabilities reach ~30 * log(1e-12) ~ -830, so the
        # historical log(exp(.).mean()) underflowed to -inf (premise
        # asserted below).  The logsumexp path must stay finite and never
        # divide-by-zero inside np.log.
        channel = _channel(ramp_pulse(30, 2), 40.0)
        detector = SymbolBySymbolDetector(channel)
        indices, signs = channel.simulate(400, rng=0)
        log_obs = channel.log_observation_probabilities(signs)
        with np.errstate(divide="ignore"):
            naive = np.log(np.exp(log_obs).mean(axis=1))
        assert np.isinf(naive).any(), "premise: the naive path underflows"
        with np.errstate(divide="raise"):
            decisions = detector.detect(signs)
        marginal = TrellisKernel(channel).symbolwise_log_marginals(log_obs)
        assert np.all(np.isfinite(marginal))
        # The decisions are real detections, not argmax-of-ties zeros.
        assert len(np.unique(decisions)) > 1
        assert detector.symbol_error_rate(indices, signs) < 0.5
