"""The campaign service accepts measured-channel submissions.

The ISSUE's service-level acceptance claim: submitting
``measured-channel-coded-ber-sweep`` to a running daemon returns a
payload byte-identical to a local ``run_scenario`` of the same seed and
overrides — the dataset reference resolves and canonicalizes identically
on both paths.
"""

import threading

import pytest

from repro.core.store import MemoryStore
from repro.instrument import AcquisitionPlan, SimulatedVna, acquire_dataset
from repro.scenarios import run_scenario
from repro.service import ServiceClient, serve

SCENARIO = "measured-channel-coded-ber-sweep"

#: Same fast override set as tests/test_scenarios_measured.py.
FAST = {"coding.lifting_factor": 13, "coding.termination_length": 6,
        "precision.max_codewords": 8, "precision.min_codewords": 2,
        "precision.rel_ci_target": 0.9, "precision.min_errors": 2}


@pytest.fixture()
def client():
    instance = serve(store=MemoryStore(), port=0, n_workers=2,
                     processes=False)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(instance.url, timeout=30.0)
    finally:
        instance.stop()
        instance.server_close()


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    plan = AcquisitionPlan(distances_m=(0.1,), seed=23,
                           environment="parallel copper boards",
                           n_points=96)
    with SimulatedVna(seed=plan.seed) as vna:
        dataset = acquire_dataset(vna, plan)
    path = str(tmp_path_factory.mktemp("datasets") / "measured.json")
    dataset.save(path)
    return path


def test_measured_submission_matches_a_local_run(client, dataset_path):
    overrides = dict(FAST, **{"channel.dataset": dataset_path})
    job = client.submit(SCENARIO, seed=0, overrides=overrides)
    done = client.wait(job["job_id"], timeout=300)
    assert done["status"] == "done"
    local = run_scenario(SCENARIO, rng=0,
                         overrides=overrides).to_json().encode("utf-8")
    assert client.result_bytes(job["job_id"]) == local


def test_warm_measured_resubmission_computes_nothing(client, dataset_path):
    overrides = dict(FAST, **{"channel.dataset": dataset_path})
    cold = client.submit(SCENARIO, seed=0, overrides=overrides)
    client.wait(cold["job_id"], timeout=300)
    warm = client.submit(SCENARIO, seed=0, overrides=overrides)
    assert warm["status"] == "done"
    assert warm["computed"] == 0
    assert client.result_bytes(warm["job_id"]) \
        == client.result_bytes(cold["job_id"])
