"""Unit tests for repro.phy.channel_model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.channel_model import OversampledOneBitChannel
from repro.phy.modulation import AskConstellation
from repro.phy.pulse import rectangular_pulse, sequence_optimized_pulse


@pytest.fixture
def memory_channel():
    return OversampledOneBitChannel(pulse=sequence_optimized_pulse(),
                                    snr_db=20.0)


@pytest.fixture
def memoryless_channel():
    return OversampledOneBitChannel(pulse=rectangular_pulse(5), snr_db=20.0)


class TestStateBookkeeping:
    def test_state_count(self, memory_channel, memoryless_channel):
        assert memory_channel.n_states == 4
        assert memoryless_channel.n_states == 1

    def test_state_round_trip(self, memory_channel):
        for state in range(memory_channel.n_states):
            symbols = memory_channel.state_to_symbols(state)
            assert memory_channel.symbols_to_state(symbols) == state

    def test_next_state_shifts_in_new_symbol(self, memory_channel):
        # Memory of one symbol: the next state is simply the new input.
        for state in range(4):
            for inp in range(4):
                assert memory_channel.next_state(state, inp) == inp

    def test_next_state_memoryless(self, memoryless_channel):
        assert memoryless_channel.next_state(0, 3) == 0

    def test_two_symbol_memory_state_transition(self):
        pulse = sequence_optimized_pulse()
        taps = np.concatenate([pulse.taps, 0.1 * np.ones(5)])
        from repro.phy.pulse import Pulse

        channel = OversampledOneBitChannel(
            pulse=Pulse(taps=taps, oversampling=5), snr_db=20.0)
        assert channel.n_states == 16
        state = channel.symbols_to_state([2, 3])  # (a_{k-1}=2, a_{k-2}=3)
        next_state = channel.next_state(state, 1)
        np.testing.assert_array_equal(channel.state_to_symbols(next_state),
                                      [1, 2])

    def test_invalid_indices_rejected(self, memory_channel):
        with pytest.raises(ValueError):
            memory_channel.state_to_symbols(99)
        with pytest.raises(ValueError):
            memory_channel.next_state(0, 7)
        with pytest.raises(ValueError):
            memory_channel.next_state(42, 0)
        with pytest.raises(ValueError):
            memory_channel.symbols_to_state([0, 1])


class TestTransitionProbabilities:
    def test_shape(self, memory_channel):
        assert memory_channel.transition_prob_plus.shape == (4, 4, 5)

    def test_probabilities_in_unit_interval(self, memory_channel):
        probs = memory_channel.transition_prob_plus
        assert np.all(probs > 0.0)
        assert np.all(probs < 1.0)

    def test_memoryless_channel_ignores_state(self, memoryless_channel):
        probs = memoryless_channel.transition_prob_plus
        assert probs.shape == (1, 4, 5)

    def test_larger_amplitude_more_likely_positive(self, memoryless_channel):
        probs = memoryless_channel.transition_prob_plus[0]
        # Rect pulse: all taps positive, so P(+1) increases with the level.
        assert np.all(np.diff(probs, axis=0) > 0)

    def test_symmetry_of_antipodal_inputs(self, memoryless_channel):
        probs = memoryless_channel.transition_prob_plus[0]
        # Levels are symmetric: P(+1 | a) = 1 - P(+1 | -a) for the rect pulse.
        np.testing.assert_allclose(probs[0], 1.0 - probs[3], atol=1e-12)
        np.testing.assert_allclose(probs[1], 1.0 - probs[2], atol=1e-12)

    def test_higher_snr_sharper_probabilities(self):
        low = OversampledOneBitChannel(pulse=rectangular_pulse(5), snr_db=0.0)
        high = OversampledOneBitChannel(pulse=rectangular_pulse(5), snr_db=30.0)
        # For the largest amplitude the high-SNR probability is closer to 1.
        assert high.transition_prob_plus[0, 3, 0] > low.transition_prob_plus[0, 3, 0]

    def test_noise_free_signs_match_probabilities(self, memory_channel):
        signs = memory_channel.noise_free_signs()
        probs = memory_channel.transition_prob_plus
        np.testing.assert_array_equal(signs == 1, probs > 0.5)


class TestNoiseConvention:
    def test_oversampling_widens_noise_bandwidth(self):
        no_oversampling = OversampledOneBitChannel(
            pulse=rectangular_pulse(1), snr_db=10.0)
        oversampled = OversampledOneBitChannel(
            pulse=rectangular_pulse(5), snr_db=10.0)
        ratio = oversampled.noise_std ** 2 / no_oversampling.noise_std ** 2
        assert ratio == pytest.approx(5.0)

    def test_snr_definition(self):
        channel = OversampledOneBitChannel(pulse=rectangular_pulse(1),
                                           snr_db=10.0)
        assert channel.noise_std ** 2 == pytest.approx(0.1)


class TestSimulation:
    def test_output_shapes(self, memory_channel):
        indices, signs = memory_channel.simulate(100, rng=0)
        assert indices.shape == (100,)
        assert signs.shape == (100, 5)
        assert set(np.unique(signs)).issubset({-1, 1})

    def test_reproducibility(self, memory_channel):
        a = memory_channel.simulate(64, rng=3)
        b = memory_channel.simulate(64, rng=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_high_snr_signs_match_noise_free_model(self):
        channel = OversampledOneBitChannel(pulse=sequence_optimized_pulse(),
                                           snr_db=60.0)
        indices, signs = channel.simulate(500, rng=1)
        noise_free = channel.noise_free_signs()
        states = channel.state_sequence(indices)
        # Skip the first symbol (different start-up convention).
        mismatches = 0
        for k in range(1, 500):
            expected = noise_free[states[k], indices[k]]
            mismatches += int(np.any(expected != signs[k]))
        assert mismatches <= 5

    def test_state_sequence_consistency(self, memory_channel):
        indices = np.array([0, 1, 2, 3, 1])
        states = memory_channel.state_sequence(indices)
        np.testing.assert_array_equal(states, [0, 0, 1, 2, 3])

    def test_invalid_simulation_length(self, memory_channel):
        with pytest.raises(ValueError):
            memory_channel.simulate(0)

    def test_log_observation_probabilities_shape(self, memory_channel):
        _, signs = memory_channel.simulate(32, rng=0)
        log_obs = memory_channel.log_observation_probabilities(signs)
        assert log_obs.shape == (32, 4, 4)
        assert np.all(log_obs < 0.0)

    def test_log_observation_probabilities_validation(self, memory_channel):
        with pytest.raises(ValueError):
            memory_channel.log_observation_probabilities(np.ones((3, 4)))

    @given(st.integers(min_value=2, max_value=3).map(lambda k: 2 ** k))
    @settings(max_examples=5, deadline=None)
    def test_other_constellation_orders(self, order):
        channel = OversampledOneBitChannel(
            pulse=sequence_optimized_pulse(),
            constellation=AskConstellation(order), snr_db=15.0)
        assert channel.n_states == order
        indices, signs = channel.simulate(50, rng=0)
        assert indices.max() < order
        assert signs.shape == (50, 5)
