"""Seam-ported kernels vs. pre-seam captures: bit-exactness and tolerances.

``tests/data/preseam_digests.json`` holds SHA-256 digests (and, for the
NoC engine, stringified result fields) captured from the kernels *before*
the :mod:`repro.backend` seam was introduced, at fixed seeds.  The tests
here recompute the same workloads through the current code with the
default backend (NumPy / float64) and require byte-identical output —
the seam must be invisible at defaults.

The float32 message path is held to a statistical tolerance instead
(bit-agreement fraction on hard decisions), matching the methodology
note in ``EXPERIMENTS.md``.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.backend import numpy_compat_module
from repro.coding.bp import BeliefPropagationDecoder
from repro.coding.codes import LdpcConvolutionalCode
from repro.coding.protograph import paper_edge_spreading
from repro.coding.window_decoder import WindowDecoder
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Mesh2D, Mesh3D
from repro.noc.traffic import TransposeTraffic
from repro.phy.channel_model import OversampledOneBitChannel
from repro.phy.modulation import AskConstellation
from repro.phy.pulse import ramp_pulse, sequence_optimized_pulse
from repro.phy.trellis import TrellisKernel

_DIGESTS = json.loads(
    (pathlib.Path(__file__).parent / "data" / "preseam_digests.json")
    .read_text())


def _digest(*arrays):
    """SHA-256 over dtype + shape + raw bytes of each array, in order."""
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _paper_code():
    return LdpcConvolutionalCode(paper_edge_spreading(), lifting_factor=25,
                                 termination_length=10, rng=0)


def _window_workload(code):
    """The fixed-seed BP workload captured pre-seam: window sub-decoder 3."""
    wd = WindowDecoder(code, window_size=4, max_iterations=25)
    decoder, columns, _ = wd._window_decoder(3)
    rng = np.random.default_rng(2026)
    sigma = 0.85
    llrs = 2.0 * (1.0 + rng.normal(0.0, sigma, size=(12, columns.size))) \
        / sigma ** 2
    return wd, decoder, llrs


_TRELLIS_CONFIGS = {
    "seqopt4": (sequence_optimized_pulse, (), 4, 15.0),
    "ramp53_2": (ramp_pulse, (5, 3), 2, 10.0),
}


def _trellis_workload(name):
    pulse_fn, pulse_args, order, snr = _TRELLIS_CONFIGS[name]
    channel = OversampledOneBitChannel(pulse=pulse_fn(*pulse_args),
                                       constellation=AskConstellation(order),
                                       snr_db=snr)
    signs = np.stack([channel.simulate(160, rng=seed)[1]
                      for seed in range(4)])
    return channel, signs


_NOC_STAT_FIELDS = ("accepted_throughput", "delivered_packets",
                    "injection_rate", "mean_latency_cycles",
                    "offered_packets", "retransmitted_flits", "saturated")


def _noc_stats(result):
    return {k: str(getattr(result, k)) for k in _NOC_STAT_FIELDS}


class TestPreSeamBitExactness:
    """Default backend/dtype must reproduce the pre-seam captures exactly."""

    def test_bp_decode_batch_matches_preseam_digest(self):
        _, decoder, llrs = _window_workload(_paper_code())
        res = decoder.decode_batch(llrs)
        assert _digest(res.posterior_llrs, res.hard_decisions,
                       res.iterations) == _DIGESTS["bp_decode_batch"]

    def test_window_decode_batch_matches_preseam_digest(self):
        code = _paper_code()
        wd = WindowDecoder(code, window_size=4, max_iterations=25)
        rng = np.random.default_rng(99)
        full = 2.0 * (1.0 + rng.normal(
            0.0, 0.8, size=(6, code.block_length * code.termination_length))) \
            / 0.8 ** 2
        wres = wd.decode_batch(full)
        assert _digest(wres.hard_decisions, wres.block_converged,
                       wres.iterations_per_block) \
            == _DIGESTS["window_decode_batch"]

    @pytest.mark.parametrize("name", sorted(_TRELLIS_CONFIGS))
    def test_trellis_matches_preseam_digests(self, name):
        channel, signs = _trellis_workload(name)
        kernel = TrellisKernel(channel)
        log_obs = channel.log_observation_probabilities(signs)
        assert _digest(log_obs) == _DIGESTS[f"trellis_{name}_log_obs"]
        assert _digest(kernel.viterbi(log_obs)) \
            == _DIGESTS[f"trellis_{name}_viterbi"]
        assert _digest(kernel.symbol_log_posteriors(log_obs)) \
            == _DIGESTS[f"trellis_{name}_bcjr"]

    def test_noc_lossless_matches_preseam_stats(self):
        sim = NocSimulator(Mesh3D(4, 4, 4))
        result = sim.run(0.06, n_cycles=3000, warmup_cycles=500, rng=7)
        assert _noc_stats(result) == _DIGESTS["noc_mesh3d_lossless"]

    def test_noc_lossy_matches_preseam_stats(self):
        sim = NocSimulator(Mesh2D(4, 4), traffic_class=TransposeTraffic,
                           link_error_rate=0.02)
        result = sim.run(0.08, n_cycles=3000, warmup_cycles=500, rng=11)
        assert _noc_stats(result) == _DIGESTS["noc_mesh2d_lossy"]


class TestRepeatCallRegression:
    """Cached per-instance state must not leak between decode calls."""

    def test_bp_second_call_identical_to_fresh_instance(self):
        code = _paper_code()
        _, decoder, llrs = _window_workload(code)
        decoder.decode_batch(llrs)          # populate / dirty any caches
        repeat = decoder.decode_batch(llrs)
        _, fresh, _ = _window_workload(code)
        once = fresh.decode_batch(llrs)
        assert _digest(repeat.posterior_llrs, repeat.hard_decisions,
                       repeat.iterations) \
            == _digest(once.posterior_llrs, once.hard_decisions,
                       once.iterations)

    def test_trellis_second_call_identical_to_fresh_instance(self):
        channel, signs = _trellis_workload("seqopt4")
        log_obs = channel.log_observation_probabilities(signs)
        kernel = TrellisKernel(channel)
        kernel.viterbi(log_obs)
        kernel.symbol_log_posteriors(log_obs)
        fresh = TrellisKernel(channel)
        assert _digest(kernel.viterbi(log_obs)) \
            == _digest(fresh.viterbi(log_obs))
        assert _digest(kernel.symbol_log_posteriors(log_obs)) \
            == _digest(fresh.symbol_log_posteriors(log_obs))


class TestFloat32Tolerance:
    """float32 message path: statistical agreement, not bit-identity."""

    def test_bp_float32_hard_decision_agreement(self):
        code = _paper_code()
        wd = WindowDecoder(code, window_size=4, max_iterations=25)
        decoder64, columns, _ = wd._window_decoder(3)
        wd32 = WindowDecoder(code, window_size=4, max_iterations=25,
                             dtype="float32")
        decoder32, _, _ = wd32._window_decoder(3)
        rng = np.random.default_rng(2026)
        sigma = 0.85
        llrs = 2.0 * (1.0 + rng.normal(0.0, sigma, size=(12, columns.size))) \
            / sigma ** 2
        bits64 = decoder64.decode_batch(llrs).hard_decisions
        bits32 = decoder32.decode_batch(llrs).hard_decisions
        assert bits32.shape == bits64.shape
        assert np.mean(bits32 == bits64) >= 0.99

    def test_trellis_float32_decision_agreement(self):
        channel, signs = _trellis_workload("seqopt4")
        log_obs = channel.log_observation_probabilities(signs)
        kernel64 = TrellisKernel(channel)
        kernel32 = TrellisKernel(channel, dtype="float32")
        vit64 = kernel64.viterbi(log_obs)
        vit32 = kernel32.viterbi(log_obs)
        assert np.mean(vit32 == vit64) >= 0.99
        app64 = kernel64.symbol_log_posteriors(log_obs)
        app32 = kernel32.symbol_log_posteriors(log_obs)
        assert np.mean(np.argmax(app32, axis=-1)
                       == np.argmax(app64, axis=-1)) >= 0.99


class TestCompatBackendEquivalence:
    """The capability-stripped generic path must agree with the tuned one."""

    def test_bp_compat_path_matches_fast_path(self):
        code = _paper_code()
        _, decoder, llrs = _window_workload(code)
        compat = BeliefPropagationDecoder(decoder.parity_check,
                                          max_iterations=25,
                                          backend=numpy_compat_module(),
                                          dtype="float32")
        fast = BeliefPropagationDecoder(decoder.parity_check,
                                        max_iterations=25,
                                        dtype="float32")
        res_compat = compat.decode_batch(llrs)
        res_fast = fast.decode_batch(llrs)
        np.testing.assert_array_equal(res_compat.hard_decisions,
                                      res_fast.hard_decisions)
        # Op ordering differs between the paths, so float32 posteriors
        # agree only to single-precision accumulation error.
        np.testing.assert_allclose(res_compat.posterior_llrs,
                                   res_fast.posterior_llrs,
                                   rtol=1e-3, atol=1e-2)

    def test_trellis_compat_path_matches_fast_path(self):
        channel, signs = _trellis_workload("ramp53_2")
        log_obs = channel.log_observation_probabilities(signs)
        compat = TrellisKernel(channel, backend=numpy_compat_module())
        fast = TrellisKernel(channel)
        np.testing.assert_array_equal(compat.viterbi(log_obs),
                                      fast.viterbi(log_obs))
        np.testing.assert_allclose(compat.symbol_log_posteriors(log_obs),
                                   fast.symbol_log_posteriors(log_obs),
                                   rtol=1e-12, atol=1e-12)


class TestNocBatchBitIdentity:
    """run_batch must be bit-identical to sequential solo runs."""

    @pytest.mark.parametrize("lossy", [False, True],
                             ids=["lossless", "lossy"])
    def test_run_batch_matches_sequential_solo(self, lossy):
        def make_sim():
            if lossy:
                return NocSimulator(Mesh2D(4, 4),
                                    traffic_class=TransposeTraffic,
                                    link_error_rate=0.02)
            return NocSimulator(Mesh3D(4, 4, 4))

        rate = 0.08 if lossy else 0.06
        seeds = [7, 19, 101]
        solo = [make_sim().run(rate, n_cycles=1500, warmup_cycles=300, rng=s)
                for s in seeds]
        batch = make_sim().run_batch(rate, n_cycles=1500, warmup_cycles=300,
                                     rngs=seeds)
        assert len(batch) == len(solo)
        for a, b in zip(solo, batch):
            assert _noc_stats(a) == _noc_stats(b)
