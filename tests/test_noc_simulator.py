"""Unit and integration tests for repro.noc.simulator."""

import numpy as np
import pytest

from repro.core.engine import SweepEngine
from repro.noc.analytic import AnalyticNocModel
from repro.noc.metrics import average_hop_count
from repro.noc.simulator import NocSimulator, SimulationResult
from repro.noc.topology import Mesh2D, Mesh3D, StarMesh
from repro.noc.traffic import NeighborTraffic


class TestSimulatorBasics:
    def test_result_fields(self):
        simulator = NocSimulator(Mesh2D(4, 4))
        result = simulator.run(0.05, n_cycles=1_000, warmup_cycles=200, rng=0)
        assert isinstance(result, SimulationResult)
        assert result.injection_rate == pytest.approx(0.05)
        assert result.delivered_packets > 0
        assert result.offered_packets >= result.delivered_packets
        assert not result.saturated

    def test_zero_injection(self):
        simulator = NocSimulator(Mesh2D(3, 3))
        result = simulator.run(0.0, n_cycles=500, warmup_cycles=100, rng=0)
        assert result.delivered_packets == 0
        assert np.isnan(result.mean_latency_cycles)

    def test_reproducible_with_seed(self):
        simulator = NocSimulator(Mesh2D(4, 4))
        a = simulator.run(0.1, n_cycles=1_000, warmup_cycles=200, rng=42)
        b = simulator.run(0.1, n_cycles=1_000, warmup_cycles=200, rng=42)
        assert a.mean_latency_cycles == pytest.approx(b.mean_latency_cycles)
        assert a.delivered_packets == b.delivered_packets

    def test_parameter_validation(self):
        simulator = NocSimulator(Mesh2D(3, 3))
        with pytest.raises(ValueError):
            simulator.run(-0.1)
        with pytest.raises(ValueError):
            simulator.run(0.1, n_cycles=0)
        with pytest.raises(ValueError):
            simulator.run(0.1, n_cycles=100, warmup_cycles=100)
        with pytest.raises(ValueError):
            NocSimulator(Mesh2D(3, 3), pipeline_latency_cycles=-1)

    def test_accepted_throughput_tracks_offered_load_below_saturation(self):
        simulator = NocSimulator(Mesh2D(4, 4))
        result = simulator.run(0.1, n_cycles=3_000, warmup_cycles=500, rng=1)
        assert result.accepted_throughput == pytest.approx(0.1, abs=0.02)

    def test_latency_sweep(self):
        simulator = NocSimulator(Mesh2D(3, 3))
        results = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                          warmup_cycles=200, rng=2)
        assert len(results) == 2
        assert results[0].injection_rate < results[1].injection_rate

    def test_zero_pipeline_respects_one_cycle_per_link(self):
        # Regression: with pipeline_latency_cycles=0 a forwarded flit used
        # to traverse several links within one cycle (the service loop
        # re-encountered it in a queue later in the dict iteration),
        # deflating latencies below the one-cycle-per-link floor.
        topology = Mesh2D(4, 4)
        simulator = NocSimulator(topology, pipeline_latency_cycles=0)
        result = simulator.run(0.02, n_cycles=3_000, warmup_cycles=500,
                               rng=0)
        # Every packet needs at least one cycle per traversed link plus
        # the ejection cycle, so the mean cannot drop below the mean hop
        # count (leaving half a cycle of sampling slack).
        floor = average_hop_count(topology)
        assert result.delivered_packets > 100
        assert result.mean_latency_cycles >= floor + 0.5

    def test_latency_sweep_points_are_order_independent(self):
        # Per-point generators are spawned by point index from the root
        # seed, so a sub-grid evaluated with the same seed reproduces the
        # full grid's leading points exactly.
        simulator = NocSimulator(Mesh2D(3, 3))
        full = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                       warmup_cycles=200, rng=9)
        sub = simulator.latency_sweep([0.05], n_cycles=800,
                                      warmup_cycles=200, rng=9)
        assert sub[0] == full[0]

    def test_latency_sweep_shared_engine_caches(self):
        engine = SweepEngine()
        simulator = NocSimulator(Mesh2D(3, 3))
        first = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                        warmup_cycles=200, rng=4,
                                        engine=engine)
        # Same worker configuration, points and integer seed: the second
        # sweep must be served from the cache.
        worker_calls = engine.cache_info()["misses"]
        second = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                         warmup_cycles=200, rng=4,
                                         engine=engine)
        assert engine.cache_info()["misses"] == worker_calls
        assert engine.cache_info()["hits"] >= 2
        assert first == second


class TestSimulatorAgainstAnalyticModel:
    """Integration: the cycle-level simulator validates the queueing model."""

    @pytest.mark.parametrize("topology_factory", [
        lambda: Mesh2D(4, 4),
        lambda: StarMesh(3, 3, concentration=2),
        lambda: Mesh3D(3, 3, 2),
    ])
    def test_low_load_latency_agreement(self, topology_factory):
        topology = topology_factory()
        simulator = NocSimulator(topology)
        model = AnalyticNocModel(topology)
        simulated = simulator.run(0.05, n_cycles=4_000, warmup_cycles=1_000,
                                  rng=3)
        analytic = model.mean_latency(0.05)
        assert simulated.mean_latency_cycles == pytest.approx(analytic,
                                                              rel=0.25)

    def test_latency_increases_with_load_in_simulation(self):
        topology = Mesh2D(4, 4)
        simulator = NocSimulator(topology)
        low = simulator.run(0.05, n_cycles=4_000, warmup_cycles=1_000, rng=4)
        high = simulator.run(0.3, n_cycles=4_000, warmup_cycles=1_000, rng=4)
        assert high.mean_latency_cycles > low.mean_latency_cycles

    def test_simulator_detects_saturation_above_analytic_limit(self):
        topology = Mesh2D(4, 4)
        model = AnalyticNocModel(topology)
        simulator = NocSimulator(topology)
        overload = 1.6 * model.saturation_rate()
        result = simulator.run(overload, n_cycles=3_000, warmup_cycles=500,
                               rng=5)
        # Either the saturation flag trips or latency explodes well past the
        # zero-load value.
        assert result.saturated or \
            result.mean_latency_cycles > 4.0 * model.zero_load_latency()

    def test_local_traffic_keeps_latency_low(self):
        topology = Mesh2D(4, 4)
        simulator = NocSimulator(topology, traffic_class=NeighborTraffic)
        result = simulator.run(0.4, n_cycles=3_000, warmup_cycles=500, rng=6)
        assert result.mean_latency_cycles < 12.0

    def test_3d_mesh_latency_below_2d_mesh_in_simulation(self):
        # The headline qualitative claim of Fig. 8(a), checked by simulation
        # rather than the analytic model.
        mesh2d = NocSimulator(Mesh2D(4, 4)).run(0.1, n_cycles=3_000,
                                                warmup_cycles=500, rng=7)
        mesh3d = NocSimulator(Mesh3D(2, 2, 4)).run(0.1, n_cycles=3_000,
                                                   warmup_cycles=500, rng=7)
        assert mesh3d.mean_latency_cycles < mesh2d.mean_latency_cycles
