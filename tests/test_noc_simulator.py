"""Unit and integration tests for repro.noc.simulator."""

import math

import numpy as np
import pytest

from repro.core.engine import SweepEngine
from repro.noc.analytic import AnalyticNocModel, RouterParameters
from repro.noc.metrics import average_hop_count
from repro.noc.routing import ShortestPathRouting
from repro.noc.simulator import (
    NocSimulator,
    ReferenceNocSimulator,
    SimulationResult,
)
from repro.noc.topology import Mesh2D, Mesh3D, StarMesh
from repro.noc.traffic import HotspotTraffic, NeighborTraffic, TransposeTraffic


class TestSimulatorBasics:
    def test_result_fields(self):
        simulator = NocSimulator(Mesh2D(4, 4))
        result = simulator.run(0.05, n_cycles=1_000, warmup_cycles=200, rng=0)
        assert isinstance(result, SimulationResult)
        assert result.injection_rate == pytest.approx(0.05)
        assert result.delivered_packets > 0
        assert result.offered_packets >= result.delivered_packets
        assert not result.saturated

    def test_zero_injection(self):
        # Defined edge case: no packet delivered and none offered — the
        # latency is infinite (no sample exists) but the network is not
        # called saturated.
        simulator = NocSimulator(Mesh2D(3, 3))
        result = simulator.run(0.0, n_cycles=500, warmup_cycles=100, rng=0)
        assert result.delivered_packets == 0
        assert result.mean_latency_cycles == math.inf
        assert not result.saturated

    @pytest.mark.parametrize("simulator_class",
                             [NocSimulator, ReferenceNocSimulator])
    def test_zero_deliveries_with_offered_traffic_is_inf_and_saturated(
            self, simulator_class):
        # Regression: this used to return NaN.  A huge router pipeline
        # means nothing can reach an ejection port within the horizon,
        # so traffic is offered but none is delivered: the defined result
        # is an infinite mean latency with the saturated flag set.
        simulator = simulator_class(Mesh2D(3, 3),
                                    pipeline_latency_cycles=10_000)
        result = simulator.run(0.5, n_cycles=200, warmup_cycles=50, rng=0)
        assert result.offered_packets > 0
        assert result.delivered_packets == 0
        assert result.mean_latency_cycles == math.inf
        assert result.saturated

    def test_reproducible_with_seed(self):
        simulator = NocSimulator(Mesh2D(4, 4))
        a = simulator.run(0.1, n_cycles=1_000, warmup_cycles=200, rng=42)
        b = simulator.run(0.1, n_cycles=1_000, warmup_cycles=200, rng=42)
        assert a.mean_latency_cycles == pytest.approx(b.mean_latency_cycles)
        assert a.delivered_packets == b.delivered_packets

    def test_parameter_validation(self):
        simulator = NocSimulator(Mesh2D(3, 3))
        with pytest.raises(ValueError):
            simulator.run(-0.1)
        with pytest.raises(ValueError):
            simulator.run(0.1, n_cycles=0)
        with pytest.raises(ValueError):
            simulator.run(0.1, n_cycles=100, warmup_cycles=100)
        with pytest.raises(ValueError):
            NocSimulator(Mesh2D(3, 3), pipeline_latency_cycles=-1)

    def test_accepted_throughput_tracks_offered_load_below_saturation(self):
        simulator = NocSimulator(Mesh2D(4, 4))
        result = simulator.run(0.1, n_cycles=3_000, warmup_cycles=500, rng=1)
        assert result.accepted_throughput == pytest.approx(0.1, abs=0.02)

    def test_latency_sweep(self):
        simulator = NocSimulator(Mesh2D(3, 3))
        results = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                          warmup_cycles=200, rng=2)
        assert len(results) == 2
        assert results[0].injection_rate < results[1].injection_rate

    def test_zero_pipeline_respects_one_cycle_per_link(self):
        # Regression: with pipeline_latency_cycles=0 a forwarded flit used
        # to traverse several links within one cycle (the service loop
        # re-encountered it in a queue later in the dict iteration),
        # deflating latencies below the one-cycle-per-link floor.
        topology = Mesh2D(4, 4)
        simulator = NocSimulator(topology, pipeline_latency_cycles=0)
        result = simulator.run(0.02, n_cycles=3_000, warmup_cycles=500,
                               rng=0)
        # Every packet needs at least one cycle per traversed link plus
        # the ejection cycle, so the mean cannot drop below the mean hop
        # count (leaving half a cycle of sampling slack).
        floor = average_hop_count(topology)
        assert result.delivered_packets > 100
        assert result.mean_latency_cycles >= floor + 0.5

    def test_latency_sweep_points_are_order_independent(self):
        # Per-point generators are spawned by point index from the root
        # seed, so a sub-grid evaluated with the same seed reproduces the
        # full grid's leading points exactly.
        simulator = NocSimulator(Mesh2D(3, 3))
        full = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                       warmup_cycles=200, rng=9)
        sub = simulator.latency_sweep([0.05], n_cycles=800,
                                      warmup_cycles=200, rng=9)
        assert sub[0] == full[0]

    def test_latency_sweep_shared_engine_caches(self):
        engine = SweepEngine()
        simulator = NocSimulator(Mesh2D(3, 3))
        first = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                        warmup_cycles=200, rng=4,
                                        engine=engine)
        # Same worker configuration, points and integer seed: the second
        # sweep must be served from the cache.
        worker_calls = engine.cache_info()["misses"]
        second = simulator.latency_sweep([0.05, 0.1], n_cycles=800,
                                         warmup_cycles=200, rng=4,
                                         engine=engine)
        assert engine.cache_info()["misses"] == worker_calls
        assert engine.cache_info()["hits"] >= 2
        assert first == second


class TestSimulatorAgainstAnalyticModel:
    """Integration: the cycle-level simulator validates the queueing model."""

    @pytest.mark.parametrize("topology_factory", [
        lambda: Mesh2D(4, 4),
        lambda: StarMesh(3, 3, concentration=2),
        lambda: Mesh3D(3, 3, 2),
    ])
    def test_low_load_latency_agreement(self, topology_factory):
        topology = topology_factory()
        simulator = NocSimulator(topology)
        model = AnalyticNocModel(topology)
        simulated = simulator.run(0.05, n_cycles=4_000, warmup_cycles=1_000,
                                  rng=3)
        analytic = model.mean_latency(0.05)
        assert simulated.mean_latency_cycles == pytest.approx(analytic,
                                                              rel=0.25)

    def test_latency_increases_with_load_in_simulation(self):
        topology = Mesh2D(4, 4)
        simulator = NocSimulator(topology)
        low = simulator.run(0.05, n_cycles=4_000, warmup_cycles=1_000, rng=4)
        high = simulator.run(0.3, n_cycles=4_000, warmup_cycles=1_000, rng=4)
        assert high.mean_latency_cycles > low.mean_latency_cycles

    def test_simulator_detects_saturation_above_analytic_limit(self):
        topology = Mesh2D(4, 4)
        model = AnalyticNocModel(topology)
        simulator = NocSimulator(topology)
        overload = 1.6 * model.saturation_rate()
        result = simulator.run(overload, n_cycles=3_000, warmup_cycles=500,
                               rng=5)
        # Either the saturation flag trips or latency explodes well past the
        # zero-load value.
        assert result.saturated or \
            result.mean_latency_cycles > 4.0 * model.zero_load_latency()

    def test_local_traffic_keeps_latency_low(self):
        topology = Mesh2D(4, 4)
        simulator = NocSimulator(topology, traffic_class=NeighborTraffic)
        result = simulator.run(0.4, n_cycles=3_000, warmup_cycles=500, rng=6)
        assert result.mean_latency_cycles < 12.0

    def test_3d_mesh_latency_below_2d_mesh_in_simulation(self):
        # The headline qualitative claim of Fig. 8(a), checked by simulation
        # rather than the analytic model.
        mesh2d = NocSimulator(Mesh2D(4, 4)).run(0.1, n_cycles=3_000,
                                                warmup_cycles=500, rng=7)
        mesh3d = NocSimulator(Mesh3D(2, 2, 4)).run(0.1, n_cycles=3_000,
                                                   warmup_cycles=500, rng=7)
        assert mesh3d.mean_latency_cycles < mesh2d.mean_latency_cycles


class TestVectorizedAgainstReference:
    """The vectorized engine must be distribution-equivalent to the deque
    reference: same topology and comparable seeds give delivered-packet
    counts and mean latencies within statistical tolerance."""

    @pytest.mark.parametrize("topology_factory,rate", [
        (lambda: Mesh2D(4, 4), 0.15),
        (lambda: Mesh2D(8, 8), 0.1),
        (lambda: Mesh3D(3, 3, 2), 0.12),
        (lambda: StarMesh(3, 3, concentration=2), 0.08),
    ])
    def test_delivered_counts_and_latency_match(self, topology_factory, rate):
        topology = topology_factory()
        reference = ReferenceNocSimulator(topology).run(
            rate, n_cycles=4_000, warmup_cycles=800, rng=11)
        vectorized = NocSimulator(topology).run(
            rate, n_cycles=4_000, warmup_cycles=800, rng=11)
        assert vectorized.delivered_packets == pytest.approx(
            reference.delivered_packets, rel=0.08)
        assert vectorized.offered_packets == pytest.approx(
            reference.offered_packets, rel=0.08)
        assert vectorized.mean_latency_cycles == pytest.approx(
            reference.mean_latency_cycles, rel=0.10)
        assert vectorized.saturated == reference.saturated

    def test_reference_latency_sweep_still_works(self):
        results = ReferenceNocSimulator(Mesh2D(3, 3)).latency_sweep(
            [0.05, 0.1], n_cycles=800, warmup_cycles=200, rng=2)
        assert len(results) == 2
        assert all(isinstance(result, SimulationResult)
                   for result in results)

    def test_reference_rejects_patterns_with_silent_modules_clearly(self):
        # The 3x3 transpose fixed point (module 4) sends nothing, which
        # the reference engine's uniform-arrival loop cannot express; it
        # must say so instead of raising from numpy internals.
        simulator = ReferenceNocSimulator(Mesh2D(3, 3),
                                          traffic_class=TransposeTraffic)
        with pytest.raises(ValueError, match="vectorized NocSimulator"):
            simulator.run(0.1, n_cycles=200, warmup_cycles=50, rng=0)


class TestLinkLatency:
    """Regression: ``link_latency_cycles`` used to be silently dropped by
    the cycle simulator (only the analytic RouterParameters honored it)."""

    @pytest.mark.parametrize("simulator_class",
                             [NocSimulator, ReferenceNocSimulator])
    def test_link_latency_increases_zero_load_latency(self, simulator_class):
        topology = Mesh2D(4, 4)
        plain = simulator_class(topology).run(
            0.02, n_cycles=3_000, warmup_cycles=500, rng=0)
        wired = simulator_class(topology, link_latency_cycles=3).run(
            0.02, n_cycles=3_000, warmup_cycles=500, rng=0)
        # Every traversed link now costs 3 extra cycles; the mean hop
        # count of the 4x4 mesh is ~2.5, so the mean latency must grow
        # by several cycles.
        assert wired.mean_latency_cycles > plain.mean_latency_cycles + 4.0

    def test_link_latency_matches_analytic_model_at_low_load(self):
        topology = Mesh2D(4, 4)
        simulated = NocSimulator(topology, link_latency_cycles=2).run(
            0.03, n_cycles=4_000, warmup_cycles=1_000, rng=1)
        analytic = AnalyticNocModel(
            topology,
            router=RouterParameters(link_latency_cycles=2.0)).mean_latency(0.03)
        assert simulated.mean_latency_cycles == pytest.approx(analytic,
                                                              rel=0.2)

    def test_negative_link_latency_rejected(self):
        with pytest.raises(ValueError):
            NocSimulator(Mesh2D(3, 3), link_latency_cycles=-1)


class TestLossyLinks:
    def test_zero_error_rate_is_bit_identical_to_lossless(self):
        # All injection randomness is pre-generated, so the lossy code
        # path at link_error_rate=0 must reproduce the lossless results
        # exactly at the same seed.
        topology = Mesh2D(4, 4)
        lossless = NocSimulator(topology).run(
            0.1, n_cycles=2_000, warmup_cycles=400, rng=3)
        zero_loss = NocSimulator(topology, link_error_rate=0.0).run(
            0.1, n_cycles=2_000, warmup_cycles=400, rng=3)
        assert zero_loss == lossless
        assert zero_loss.retransmitted_flits == 0

    def test_latency_and_retransmissions_grow_with_error_rate(self):
        topology = Mesh2D(4, 4)
        results = [NocSimulator(topology, link_error_rate=p).run(
            0.1, n_cycles=2_500, warmup_cycles=500, rng=4)
            for p in (0.0, 0.1, 0.3)]
        latencies = [r.mean_latency_cycles for r in results]
        retransmissions = [r.retransmitted_flits for r in results]
        assert latencies == sorted(latencies)
        assert retransmissions == sorted(retransmissions)
        assert retransmissions[0] == 0 and retransmissions[-1] > 0

    def test_retransmission_conserves_packets(self):
        # Flits are retried, never silently dropped: below saturation the
        # network still delivers (almost) everything it was offered.
        result = NocSimulator(Mesh2D(4, 4), link_error_rate=0.2).run(
            0.1, n_cycles=3_000, warmup_cycles=500, rng=5)
        assert result.delivered_packets <= result.offered_packets * 1.05
        assert result.delivered_packets >= 0.9 * result.offered_packets
        assert not result.saturated

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            NocSimulator(Mesh2D(3, 3), link_error_rate=1.0)
        with pytest.raises(ValueError):
            NocSimulator(Mesh2D(3, 3), link_error_rate=-0.1)


class TestFiniteBuffersAndBackpressure:
    def test_shallow_buffers_throttle_throughput(self):
        topology = Mesh2D(8, 8)
        shallow = NocSimulator(topology, buffer_depth_flits=1).run(
            0.25, n_cycles=2_000, warmup_cycles=400, rng=6)
        deep = NocSimulator(topology).run(
            0.25, n_cycles=2_000, warmup_cycles=400, rng=6)
        assert shallow.accepted_throughput < 0.6 * deep.accepted_throughput
        assert shallow.saturated
        assert not deep.saturated

    def test_generous_buffers_match_infinite(self):
        topology = Mesh2D(4, 4)
        bounded = NocSimulator(topology, buffer_depth_flits=64).run(
            0.1, n_cycles=2_000, warmup_cycles=400, rng=7)
        unbounded = NocSimulator(topology).run(
            0.1, n_cycles=2_000, warmup_cycles=400, rng=7)
        # A depth no queue ever reaches behaves exactly like no depth.
        assert bounded.delivered_packets == unbounded.delivered_packets
        assert bounded.mean_latency_cycles == pytest.approx(
            unbounded.mean_latency_cycles)

    def test_backpressure_never_loses_packets(self):
        result = NocSimulator(Mesh2D(4, 4), buffer_depth_flits=2).run(
            0.05, n_cycles=3_000, warmup_cycles=500, rng=8)
        assert result.delivered_packets >= 0.9 * result.offered_packets

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            NocSimulator(Mesh2D(3, 3), buffer_depth_flits=-1)


class TestPluggableTrafficAndRouting:
    @pytest.mark.parametrize("traffic_class", [HotspotTraffic,
                                               TransposeTraffic,
                                               NeighborTraffic])
    def test_patterns_run_and_deliver(self, traffic_class):
        simulator = NocSimulator(Mesh2D(4, 4), traffic_class=traffic_class)
        result = simulator.run(0.1, n_cycles=2_000, warmup_cycles=400, rng=9)
        assert result.delivered_packets > 0
        assert math.isfinite(result.mean_latency_cycles)

    def test_shortest_path_routing_matches_dor_on_mesh(self):
        # On a plain mesh shortest-path routing is also minimal, so the
        # two routings must give statistically equal latencies.
        topology = Mesh2D(4, 4)
        dor = NocSimulator(topology).run(
            0.1, n_cycles=3_000, warmup_cycles=500, rng=10)
        spf = NocSimulator(topology, routing_class=ShortestPathRouting).run(
            0.1, n_cycles=3_000, warmup_cycles=500, rng=10)
        assert spf.mean_latency_cycles == pytest.approx(
            dor.mean_latency_cycles, rel=0.1)
        assert spf.delivered_packets == pytest.approx(
            dor.delivered_packets, rel=0.08)

    def test_transpose_traffic_fixed_point_injects_nothing(self):
        # 3x3 mesh: module 4 is its own transpose partner and offers no
        # traffic; the run must not crash and the rest still delivers.
        simulator = NocSimulator(Mesh2D(3, 3),
                                 traffic_class=TransposeTraffic)
        result = simulator.run(0.2, n_cycles=1_500, warmup_cycles=300,
                               rng=11)
        assert result.delivered_packets > 0
