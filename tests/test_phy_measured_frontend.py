"""Tests for MeasuredChannelFrontend: the ChannelFrontend over measured data."""

import pickle

import numpy as np
import pytest

from repro.instrument import AcquisitionPlan, SimulatedVna, acquire_dataset
from repro.phy import (
    BpskAwgnFrontend,
    ChannelFrontend,
    MeasuredChannelFrontend,
    Pulse,
)


@pytest.fixture(scope="module")
def dataset():
    plan = AcquisitionPlan(distances_m=(0.05, 0.1, 0.15), seed=11,
                           environment="parallel copper boards",
                           n_points=128)
    with SimulatedVna(seed=plan.seed) as vna:
        return acquire_dataset(vna, plan)


@pytest.fixture(scope="module")
def frontend(dataset):
    return MeasuredChannelFrontend.from_dataset(dataset, distance_m=0.1)


class TestProtocol:
    def test_satisfies_the_channel_frontend_protocol(self, frontend):
        assert isinstance(frontend, ChannelFrontend)

    def test_reports_rate_and_sampling(self, frontend):
        assert frontend.bits_per_channel_use > 0
        assert frontend.samples_per_bit > 0
        assert np.isfinite(frontend.snr_db(6.0))

    def test_from_dataset_picks_the_nearest_sweep(self, dataset):
        frontend = MeasuredChannelFrontend.from_dataset(dataset,
                                                        distance_m=0.16)
        assert frontend.sweep.distance_m == 0.15
        default = MeasuredChannelFrontend.from_dataset(dataset)
        assert default.sweep.distance_m == dataset.sweeps[0].distance_m


class TestEchoComposition:
    def test_copper_board_echoes_are_detected(self, frontend):
        assert frontend.echoes            # at least the copper-board bounce
        for excess_s, amplitude in frontend.echoes:
            assert excess_s > 0.0
            # the paper's headline margin: every echo >= ~15 dB below LoS
            assert amplitude < 10.0 ** (-14.0 / 20.0)

    def test_composite_pulse_is_normalized_and_span_capped(self, frontend):
        pulse = frontend.pulse
        assert pulse.span_symbols <= frontend.max_span_symbols
        # normalized() scales to unit average power per sample — the
        # equal-transmit-power convention every pulse design follows.
        assert np.isclose(pulse.average_power_per_sample, 1.0)

    def test_freespace_echoes_are_weaker_than_copper(self, dataset):
        plan = AcquisitionPlan(distances_m=(0.1,), seed=11,
                               environment="freespace", n_points=128)
        with SimulatedVna(seed=plan.seed) as vna:
            freespace = acquire_dataset(vna, plan)
        copper = MeasuredChannelFrontend.from_dataset(dataset,
                                                      distance_m=0.1)
        free = MeasuredChannelFrontend.from_dataset(freespace)
        strongest = lambda fe: max((a for _, a in fe.echoes), default=0.0)
        assert strongest(free) < strongest(copper)

    def test_span_must_cover_the_base_pulse(self, dataset):
        wide = Pulse(taps=np.ones(20), oversampling=5,
                     name="four-symbol test pulse").normalized()
        with pytest.raises(ValueError, match="max_span_symbols"):
            MeasuredChannelFrontend.from_dataset(
                dataset, base_pulse=wide, max_span_symbols=3)

    def test_parameter_validation(self, dataset):
        with pytest.raises(ValueError, match="symbol_rate_hz"):
            MeasuredChannelFrontend.from_dataset(dataset,
                                                 symbol_rate_hz=0.0)
        with pytest.raises(ValueError, match="echo_threshold_db"):
            MeasuredChannelFrontend.from_dataset(dataset,
                                                 echo_threshold_db=-1.0)


class TestTransmission:
    def test_llrs_are_finite_and_deterministic(self, frontend):
        bits = np.arange(200) % 2
        first = frontend.transmit_llrs(bits, ebn0_db=8.0, rng=5)
        second = frontend.transmit_llrs(bits, ebn0_db=8.0, rng=5)
        assert np.all(np.isfinite(first))
        np.testing.assert_array_equal(first, second)

    def test_pickle_round_trip_preserves_behaviour(self, frontend):
        clone = pickle.loads(pickle.dumps(frontend))
        bits = np.arange(120) % 2
        np.testing.assert_array_equal(
            frontend.transmit_llrs(bits, ebn0_db=8.0, rng=3),
            clone.transmit_llrs(bits, ebn0_db=8.0, rng=3))

    def test_measured_channel_is_harder_than_ideal_bpsk(self, frontend):
        # Same Eb/N0, same bits: the 1-bit measured-echo chain must make
        # more raw decisions errors than the ideal BPSK/AWGN baseline —
        # the right-shift the measured scenarios assert at the coded
        # level.
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 4000)
        ideal = BpskAwgnFrontend(rate=frontend.rate)

        def raw_error_rate(fe):
            llrs = fe.transmit_llrs(bits, ebn0_db=6.0, rng=1)
            hard = (llrs < 0).astype(int)
            return np.mean(hard != bits[:hard.size])

        assert raw_error_rate(frontend) > raw_error_rate(ideal)
