"""Tests for the per-layer spec dataclasses (repro.scenarios.specs)."""

import json

import pytest

from repro.scenarios.specs import (
    ChannelSpec,
    CodingSpec,
    NocSpec,
    PhySpec,
    SystemSpec,
)

ALL_SPECS = (ChannelSpec, PhySpec, CodingSpec, NocSpec, SystemSpec)

CUSTOMISED = (
    ChannelSpec(distance_m=0.3, include_butler_mismatch=True,
                rx_noise_figure_db=7.0),
    PhySpec(pulse_design="rectangular", oversampling=3, n_symbols=100,
            dual_polarization=False),
    CodingSpec(family="ldpc-bc", lifting_factor=200),
    NocSpec(topology="starmesh", dimensions=(4, 4), concentration=4),
    NocSpec(traffic="hotspot", routing="shortest_path",
            buffer_depth_flits=4, link_error_rate=0.01),
    NocSpec(topology="mesh2d", dimensions=(4, 4), traffic="transpose",
            ebn0_db=2.0),
    SystemSpec(n_boards=3, stack_mesh_shape=(2, 2, 2), tx_power_dbm=0.0),
)


class TestRoundTrip:
    @pytest.mark.parametrize("spec_class", ALL_SPECS)
    def test_default_round_trip(self, spec_class):
        spec = spec_class()
        assert spec_class.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", CUSTOMISED,
                             ids=lambda s: type(s).__name__)
    def test_customised_round_trip(self, spec):
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec_class", ALL_SPECS)
    def test_to_dict_is_json_serializable(self, spec_class):
        payload = spec_class().to_dict()
        assert json.loads(json.dumps(payload)) == json.loads(
            json.dumps(spec_class.from_dict(payload).to_dict()))

    def test_tuple_fields_survive_json(self):
        spec = NocSpec(dimensions=(4, 4, 2))
        restored = NocSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.dimensions == (4, 4, 2)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ChannelSpec field"):
            ChannelSpec.from_dict({"distance_m": 0.1, "typo_field": 1.0})


class TestValidation:
    def test_channel_spec(self):
        with pytest.raises(ValueError):
            ChannelSpec(distance_m=-0.1)
        with pytest.raises(ValueError):
            ChannelSpec(bandwidth_hz=0.0)

    def test_phy_spec(self):
        with pytest.raises(ValueError, match="pulse_design"):
            PhySpec(pulse_design="sinc")
        with pytest.raises(ValueError):
            PhySpec(oversampling=0)

    def test_coding_spec(self):
        with pytest.raises(ValueError, match="family"):
            CodingSpec(family="turbo")
        with pytest.raises(ValueError):
            CodingSpec(window_size=0)

    def test_noc_spec(self):
        with pytest.raises(ValueError, match="topology"):
            NocSpec(topology="torus")
        with pytest.raises(ValueError, match="dimensions"):
            NocSpec(topology="mesh2d", dimensions=(4, 4, 4))
        with pytest.raises(ValueError, match="dimensions"):
            NocSpec(topology="mesh3d", dimensions=(4, 4))

    def test_noc_spec_cross_layer_knobs(self):
        with pytest.raises(ValueError, match="traffic"):
            NocSpec(traffic="tornado")
        with pytest.raises(ValueError, match="routing"):
            NocSpec(routing="adaptive")
        with pytest.raises(ValueError, match="buffer_depth_flits"):
            NocSpec(buffer_depth_flits=-1)
        with pytest.raises(ValueError, match="link_error_rate"):
            NocSpec(link_error_rate=1.0)
        with pytest.raises(ValueError, match="not both"):
            NocSpec(link_error_rate=0.1, ebn0_db=2.0)

    def test_noc_spec_zero_pipeline_is_a_valid_simulator_regime(self):
        # The cycle-level simulator explicitly supports zero pipeline
        # latency (regression-tested in test_noc_simulator); the spec
        # must be able to express it.
        spec = NocSpec(dimensions=(2, 2, 2), pipeline_latency_cycles=0.0)
        assert spec.make_simulator().pipeline_latency_cycles == 0
        # The analytic model rejects it with its own clear error.
        with pytest.raises(ValueError):
            spec.make_model()

    def test_noc_spec_simulator_rejects_fractional_pipeline(self):
        # int() truncation would silently compare an analytic model and
        # a simulator running different pipeline latencies.
        spec = NocSpec(dimensions=(2, 2, 2), pipeline_latency_cycles=2.5)
        assert spec.make_model().router.pipeline_latency_cycles == 2.5
        with pytest.raises(ValueError, match="integer"):
            spec.make_simulator()

    def test_system_spec(self):
        with pytest.raises(ValueError):
            SystemSpec(n_boards=1)
        with pytest.raises(ValueError):
            SystemSpec(stack_mesh_shape=(4, 4))

    def test_replace_revalidates(self):
        spec = ChannelSpec()
        assert spec.replace(distance_m=0.2).distance_m == 0.2
        with pytest.raises(ValueError):
            spec.replace(distance_m=-1.0)

    @pytest.mark.parametrize("spec_class", ALL_SPECS)
    def test_specs_are_hashable_and_frozen(self, spec_class):
        spec = spec_class()
        assert hash(spec) == hash(spec_class())
        with pytest.raises(AttributeError):
            spec.some_field = 1


class TestBuilders:
    def test_channel_spec_builds_table1_budget(self):
        budget = ChannelSpec().link_budget()
        entries = budget.table_entries()
        assert abs(entries["path_loss_shortest_link_db"] - 59.8) <= 0.1
        assert entries["rx_noise_figure_db"] == 10.0

    def test_phy_spec_builds_pulse(self):
        pulse = PhySpec(pulse_design="rectangular", oversampling=3).make_pulse()
        assert pulse.oversampling == 3

    def test_coding_spec_builds_both_families(self):
        cc = CodingSpec(lifting_factor=25)
        bc = CodingSpec(family="ldpc-bc", lifting_factor=100)
        assert cc.make_code().design_rate == pytest.approx(0.5)
        assert bc.make_code().n == 200
        # Eq. (4): W * N * rate; Eq. (5): N * 2 * rate.
        assert cc.replace(window_size=3).structural_latency_bits() == 75.0
        assert bc.structural_latency_bits() == 100.0

    def test_noc_spec_builds_named_topologies(self):
        assert NocSpec(topology="mesh2d", dimensions=(8, 8)) \
            .make_topology().name == "8x8 2D mesh"
        star = NocSpec(topology="starmesh", dimensions=(4, 4),
                       concentration=4).make_topology()
        assert star.n_modules == 64
        model = NocSpec().make_model()
        assert model.zero_load_latency() > 0.0

    def test_noc_spec_threads_engine_knobs_into_both_models(self):
        from repro.noc.routing import ShortestPathRouting
        from repro.noc.traffic import TransposeTraffic

        spec = NocSpec(topology="mesh2d", dimensions=(4, 4),
                       traffic="transpose", routing="shortest_path",
                       buffer_depth_flits=4, link_error_rate=0.05,
                       link_latency_cycles=1.0)
        simulator = spec.make_simulator()
        assert simulator.traffic_class is TransposeTraffic
        assert isinstance(simulator.routing, ShortestPathRouting)
        assert simulator.buffer_depth_flits == 4
        assert simulator.link_error_rate == 0.05
        assert simulator.link_latency_cycles == 1
        model = spec.make_model()
        assert model.traffic_class is TransposeTraffic
        assert isinstance(model.routing, ShortestPathRouting)

    def test_noc_spec_simulator_rejects_fractional_link_latency(self):
        spec = NocSpec(dimensions=(2, 2, 2), link_latency_cycles=0.5)
        assert spec.make_model().router.link_latency_cycles == 0.5
        with pytest.raises(ValueError, match="integer"):
            spec.make_simulator()

    def test_system_spec_builds_system(self):
        system = SystemSpec(n_boards=2).make_system()
        assert system.total_modules == 2 * system.stacks_per_board * 64
