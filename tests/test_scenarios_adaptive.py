"""Tests for the adaptive-precision scenario path: PrecisionSpec,
Scenario(precision=...), the registered adaptive sweep, campaigns and the
CLI surface."""

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np
import pytest

from repro.cli import main
from repro.coding.ber import batch_seed_sequence
from repro.core.store import DiskStore, MemoryStore
from repro.scenarios import (
    Campaign,
    CampaignEntry,
    PrecisionSpec,
    Scenario,
    build_scenario,
)

# Overrides making the registered adaptive sweep cheap enough for tests:
# stop every point at its minimum codeword count.
CHEAP = {"precision.rel_ci_target": 5.0, "precision.min_errors": 1,
         "precision.min_codewords": 4, "precision.max_codewords": 8}


@dataclass(frozen=True)
class CoinWorker:
    """Minimal incremental worker (mirrors tests/test_core_engine_adaptive)."""

    batch: int = 16

    def decode(self, stored) -> Dict[str, int]:
        if stored is None:
            return {"n": 0, "k": 0, "units": 0, "batches": 0}
        return {key: int(stored[key]) for key in ("n", "k", "units",
                                                  "batches")}

    def encode(self, state) -> Dict[str, int]:
        return dict(state)

    def satisfied(self, state, rule) -> bool:
        return rule.satisfied(state["k"], state["n"], state["units"])

    def advance(self, params: Mapping[str, Any], state, seed_sequence,
                rule):
        state = dict(state)
        while not self.satisfied(state, rule):
            child = batch_seed_sequence(seed_sequence, state["batches"])
            draws = np.random.default_rng(child).random(self.batch)
            state["k"] += int(np.count_nonzero(draws < params["p"]))
            state["n"] += self.batch
            state["units"] += self.batch
            state["batches"] += 1
        return state

    def progress(self, state) -> int:
        return int(state["units"])

    def finalize(self, params: Mapping[str, Any], state) -> Dict[str, Any]:
        return {"estimate": state["k"] / state["n"] if state["n"] else 0.0}


def coin_scenario(precision) -> Scenario:
    return Scenario("coin", "off-paper", "toy adaptive scenario",
                    specs={}, points=[{"p": 0.4}, {"p": 0.1}],
                    worker=CoinWorker(), precision=precision)


class TestPrecisionSpec:
    def test_roundtrip(self):
        spec = PrecisionSpec(rel_ci_target=0.1, max_codewords=64)
        assert PrecisionSpec.from_dict(spec.to_dict()) == spec

    def test_stopping_rule_mapping(self):
        rule = PrecisionSpec(rel_ci_target=0.1, confidence=0.9,
                             min_codewords=2, max_codewords=32,
                             min_errors=5).stopping_rule()
        assert (rule.rel_ci_target, rule.confidence) == (0.1, 0.9)
        assert (rule.min_units, rule.max_units, rule.min_errors) \
            == (2, 32, 5)

    @pytest.mark.parametrize("kwargs", [
        {"rel_ci_target": 0.0},
        {"confidence": 1.0},
        {"min_codewords": 0},
        {"min_codewords": 16, "max_codewords": 8},
        {"min_errors": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PrecisionSpec(**kwargs)


class TestAdaptiveScenario:
    def test_precision_requires_incremental_worker(self):
        with pytest.raises(ValueError, match="incremental-evaluation"):
            Scenario("bad", "off-paper", "plain worker, precision set",
                     specs={}, points=[{"x": 1}],
                     worker=lambda params, rng: 0.0,
                     precision=PrecisionSpec())

    def test_cache_key_excludes_precision(self):
        loose = coin_scenario(PrecisionSpec(rel_ci_target=0.5,
                                            min_errors=1))
        tight = coin_scenario(PrecisionSpec(rel_ci_target=0.1,
                                            min_errors=1))
        assert loose.cache_key() == tight.cache_key()
        assert "precision" in loose.specs

    def test_run_reports_precision_provenance(self):
        result = coin_scenario(PrecisionSpec(rel_ci_target=0.5,
                                             min_errors=1)).run(rng=0)
        precision = result.execution["precision"]
        assert precision["resumed_codewords"] == 0
        assert precision["new_codewords"] == precision["total_codewords"]
        assert precision["all_satisfied"]
        assert len(precision["per_point"]) == len(result.points)
        # Provenance stays out of the deterministic payload.
        assert "execution" not in json.loads(result.to_json())

    def test_tightening_resumes_from_warm_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        loose = coin_scenario(PrecisionSpec(rel_ci_target=0.5,
                                            min_errors=1))
        first = loose.run(rng=0, store=DiskStore(store_dir))
        warm = loose.run(rng=0, store=DiskStore(store_dir))
        assert warm.execution["precision"]["new_codewords"] == 0
        assert warm.execution["from_cache"] == [True, True]
        assert warm.points == first.points
        tight = coin_scenario(PrecisionSpec(rel_ci_target=0.1,
                                            min_errors=1))
        upgraded = tight.run(rng=0, store=DiskStore(store_dir))
        precision = upgraded.execution["precision"]
        assert precision["resumed_codewords"] \
            == first.execution["precision"]["total_codewords"]
        assert precision["new_codewords"] > 0
        # Identical to a cold run at the tight target.
        cold = tight.run(rng=0, store=MemoryStore())
        assert upgraded.points == cold.points


class TestRegisteredAdaptiveSweep:
    def test_registered_and_described(self):
        scenario = build_scenario("coded-ber-adaptive-sweep", CHEAP)
        assert scenario.precision is not None
        description = scenario.describe()
        assert description["specs"]["precision"]["spec_type"] \
            == "PrecisionSpec"

    def test_runs_to_target_and_reports_ci(self):
        scenario = build_scenario("coded-ber-adaptive-sweep", CHEAP)
        result = scenario.run(rng=0)
        for point in result.points:
            value = point["value"]
            assert value["n_codewords"] >= 4
            assert value["ber_ci_low"] <= value["bit_error_rate"] \
                <= value["ber_ci_high"]


class TestAdaptiveCampaign:
    def test_campaign_resumes_adaptive_entries(self, tmp_path):
        store_dir = str(tmp_path / "store")
        campaign = Campaign([CampaignEntry(
            scenario="coded-ber-adaptive-sweep", overrides=CHEAP)])
        cold = campaign.run(store=DiskStore(store_dir))
        precision = cold.results[0].execution["precision"]
        assert precision["new_codewords"] > 0
        warm = campaign.run(store=DiskStore(store_dir))
        warm_precision = warm.results[0].execution["precision"]
        assert warm_precision["new_codewords"] == 0
        assert warm.results[0].execution["from_cache"] \
            == [True] * len(warm.results[0].points)
        assert warm.results[0].points == cold.results[0].points

    def test_campaign_pool_matches_serial(self, tmp_path):
        campaign = Campaign([CampaignEntry(
            scenario="coded-ber-adaptive-sweep", overrides=CHEAP)])
        serial = campaign.run(store=MemoryStore())
        pooled = campaign.run(store=MemoryStore(), n_workers=2)
        assert pooled.results[0].points == serial.results[0].points


class TestAdaptiveCli:
    def test_warm_rerun_simulates_zero_new_codewords(self, tmp_path,
                                                     capsys):
        store_dir = str(tmp_path / "store")
        args = ["run", "coded-ber-adaptive-sweep", "--store", store_dir]
        for key, value in CHEAP.items():
            args += ["--set", f"{key}={value}"]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "precision:" in cold_out
        assert "simulated 0 new codewords" not in cold_out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "simulated 0 new codewords" in warm_out

    def test_precision_override_via_set(self, tmp_path, capsys):
        args = ["run", "coded-ber-adaptive-sweep",
                "--set", "precision.rel_ci_target=5.0",
                "--set", "precision.min_errors=1",
                "--set", "precision.max_codewords=8"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "rel CI target 5" in out

    def test_cache_gc_cli(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        DiskStore(store_dir).put("a" * 64, {"x": 1})
        assert main(["cache", "gc", "--store", store_dir,
                     "--max-size-mb", "0", "--dry-run"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert main(["cache", "gc", "--store", store_dir,
                     "--max-size-mb", "0"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert len(DiskStore(store_dir)) == 0

    def test_cache_gc_requires_a_bound(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--store", str(tmp_path / "store")])
