"""Tests for the abstract Instrument driver and the SimulatedVna backend."""

import numpy as np
import pytest

from repro.channel.measurement import FrequencySweep
from repro.instrument import (
    ENVIRONMENTS,
    Instrument,
    InstrumentError,
    InstrumentStateError,
    SimulatedVna,
    UnsupportedCapabilityError,
)


class TestLifecycle:
    def test_context_manager_connects_and_disconnects(self):
        vna = SimulatedVna(seed=0)
        assert not vna.is_connected
        with vna as connected:
            assert connected is vna
            assert vna.is_connected
        assert not vna.is_connected

    def test_double_connect_is_a_state_error(self):
        with SimulatedVna(seed=0) as vna:
            with pytest.raises(InstrumentStateError):
                vna.connect()

    def test_disconnect_is_idempotent(self):
        vna = SimulatedVna(seed=0)
        vna.connect()
        vna.disconnect()
        vna.disconnect()          # no error: like closing a closed socket
        assert not vna.is_connected

    def test_configure_before_connect_is_a_state_error(self):
        with pytest.raises(InstrumentStateError):
            SimulatedVna(seed=0).configure(n_points=64)

    def test_sweep_before_connect_is_a_state_error(self):
        with pytest.raises(InstrumentStateError):
            SimulatedVna(seed=0).sweep(distance_m=0.1)

    def test_fetch_without_sweep_is_a_state_error(self):
        with SimulatedVna(seed=0) as vna:
            with pytest.raises(InstrumentStateError, match="sweep"):
                vna.fetch()

    def test_fetch_is_one_shot(self):
        with SimulatedVna(seed=0) as vna:
            sweep = vna.sweep(distance_m=0.1).fetch()
            assert isinstance(sweep, FrequencySweep)
            with pytest.raises(InstrumentStateError):
                vna.fetch()

    def test_disconnect_drops_a_pending_sweep(self):
        vna = SimulatedVna(seed=0)
        vna.connect()
        vna.sweep(distance_m=0.1)
        vna.disconnect()
        vna.connect()
        with pytest.raises(InstrumentStateError):
            vna.fetch()


class TestTypedErrors:
    def test_error_hierarchy(self):
        assert issubclass(InstrumentStateError, InstrumentError)
        assert issubclass(UnsupportedCapabilityError, InstrumentError)
        assert issubclass(InstrumentError, RuntimeError)

    def test_unknown_setting_names_the_capability(self):
        with SimulatedVna(seed=0) as vna:
            with pytest.raises(UnsupportedCapabilityError) as info:
                vna.configure(averaging_factor=16)
        assert info.value.capability == "averaging_factor"
        assert "n_points" in str(info.value)   # names the supported set

    def test_unknown_setting_leaves_configuration_untouched(self):
        with SimulatedVna(seed=0) as vna:
            before = vna.settings
            with pytest.raises(UnsupportedCapabilityError):
                vna.configure(bogus=1)
            assert vna.settings == before

    def test_invalid_value_is_rejected_before_commit(self):
        with SimulatedVna(seed=0) as vna:
            before = vna.settings
            with pytest.raises(ValueError):
                vna.configure(n_points=1)     # a sweep needs >= 2 points
            assert vna.settings == before


class TestSimulatedVna:
    def test_identify_names_the_driver_and_grid(self):
        with SimulatedVna(seed=0, n_points=128) as vna:
            idn = vna.identify()
        assert "SimulatedVna" in idn
        assert "n_points=128" in idn

    def test_capabilities_cover_the_documented_settings(self):
        caps = SimulatedVna(seed=0).capabilities()
        assert {"start_frequency_hz", "stop_frequency_hz", "n_points",
                "noise_floor_db", "board_separation_m", "seed"} <= set(caps)

    def test_constructor_settings_go_through_configure_validation(self):
        vna = SimulatedVna(seed=0, nonsense=3)
        with pytest.raises(UnsupportedCapabilityError):
            vna.connect()

    def test_seed_is_mandatory(self):
        class NoSeed(SimulatedVna):
            def __init__(self):
                Instrument.__init__(self, name="no-seed")
                self._initial_settings = {}
                self._vna = None

        with pytest.raises(ValueError, match="seed"):
            NoSeed().connect()

    def test_environments_are_the_papers_two_setups(self):
        assert ENVIRONMENTS == ("freespace", "parallel copper boards")

    def test_unknown_environment_is_rejected(self):
        with SimulatedVna(seed=0) as vna:
            with pytest.raises(ValueError, match="environment"):
                vna.sweep(distance_m=0.1, environment="anechoic chamber")

    def test_same_seed_same_sweep(self):
        def one_sweep(seed):
            with SimulatedVna(seed=seed, n_points=64) as vna:
                return vna.sweep(distance_m=0.1).fetch()

        first, second = one_sweep(7), one_sweep(7)
        np.testing.assert_array_equal(first.s21, second.s21)
        np.testing.assert_array_equal(first.frequencies_hz,
                                      second.frequencies_hz)

    def test_reconfiguring_the_seed_rearms_the_noise_stream(self):
        with SimulatedVna(seed=3, n_points=64) as vna:
            first = vna.sweep(distance_m=0.1).fetch()
            second = vna.sweep(distance_m=0.1).fetch()
            vna.configure(seed=3)              # re-arm
            replay = vna.sweep(distance_m=0.1).fetch()
        # consecutive sweeps draw fresh noise ...
        assert not np.array_equal(first.s21, second.s21)
        # ... but re-seeding replays the stream from the start
        np.testing.assert_array_equal(first.s21, replay.s21)

    def test_distinct_seeds_differ(self):
        def one_sweep(seed):
            with SimulatedVna(seed=seed, n_points=64) as vna:
                return vna.sweep(distance_m=0.1).fetch()

        assert not np.array_equal(one_sweep(1).s21, one_sweep(2).s21)

    def test_copper_board_sweep_uses_the_configured_separation(self):
        def echoes(separation):
            from repro.channel.impulse_response import (
                sweep_to_impulse_response,
            )
            with SimulatedVna(seed=0, n_points=512,
                              board_separation_m=separation) as vna:
                sweep = vna.sweep(distance_m=0.1,
                                  environment="parallel copper boards"
                                  ).fetch()
            response = sweep_to_impulse_response(sweep)
            return [delay for delay, _ in
                    response.peaks(threshold_below_los_db=20.0)]

        # Wider board spacing pushes the dominant copper echo later.
        assert max(echoes(0.08)) > max(echoes(0.05))
