"""Unit tests for repro.noc.analytic and repro.noc.metrics (Fig. 8)."""

import numpy as np
import pytest

from repro.noc.analytic import AnalyticNocModel, LatencyResult, RouterParameters
from repro.noc.metrics import (
    average_hop_count,
    bisection_bandwidth_per_module,
    bisection_links,
    latency_throughput_summary,
    saturation_injection_rate,
    zero_load_latency,
)
from repro.noc.topology import Mesh2D, Mesh3D, StarMesh
from repro.noc.traffic import HotspotTraffic, NeighborTraffic


class TestRouterParameters:
    def test_paper_defaults(self):
        params = RouterParameters()
        assert params.pipeline_latency_cycles == 2.0
        assert params.service_time_cycles == 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RouterParameters(pipeline_latency_cycles=0.0)
        with pytest.raises(ValueError):
            RouterParameters(service_time_cycles=-1.0)
        with pytest.raises(ValueError):
            RouterParameters(link_latency_cycles=-0.5)


class TestZeroLoadLatency:
    def test_paper_64_module_values(self):
        # Fig. 8(a): roughly 13 / 7 / 10 cycles at low traffic.
        assert AnalyticNocModel(Mesh2D(8, 8)).zero_load_latency() == \
            pytest.approx(13.0, abs=1.0)
        assert AnalyticNocModel(StarMesh(4, 4, 4)).zero_load_latency() == \
            pytest.approx(7.0, abs=0.5)
        assert AnalyticNocModel(Mesh3D(4, 4, 4)).zero_load_latency() == \
            pytest.approx(10.0, abs=0.7)

    def test_metrics_helper_agrees_with_model(self):
        for topology in (Mesh2D(6, 6), StarMesh(3, 3, 4), Mesh3D(3, 3, 3)):
            model = AnalyticNocModel(topology)
            assert model.zero_load_latency() == pytest.approx(
                zero_load_latency(topology), abs=0.3)

    def test_mean_latency_at_zero_injection(self):
        model = AnalyticNocModel(Mesh2D(4, 4))
        assert model.mean_latency(0.0) == pytest.approx(model.zero_load_latency())


class TestSaturation:
    def test_paper_64_module_saturation_ordering(self):
        # Fig. 8(a): star-mesh (0.19) < 2D mesh (0.41) < 3D mesh (0.75).
        star = AnalyticNocModel(StarMesh(4, 4, 4)).saturation_rate()
        mesh2d = AnalyticNocModel(Mesh2D(8, 8)).saturation_rate()
        mesh3d = AnalyticNocModel(Mesh3D(4, 4, 4)).saturation_rate()
        assert star < mesh2d < mesh3d
        assert star == pytest.approx(0.19, abs=0.04)
        assert mesh2d == pytest.approx(0.41, abs=0.04)
        assert mesh3d == pytest.approx(0.75, abs=0.10)

    def test_latency_diverges_at_saturation(self):
        model = AnalyticNocModel(Mesh2D(8, 8))
        saturation = model.saturation_rate()
        assert np.isinf(model.mean_latency(saturation * 1.05))
        assert np.isfinite(model.mean_latency(saturation * 0.9))

    def test_latency_monotonic_in_injection_rate(self):
        model = AnalyticNocModel(Mesh3D(4, 4, 4))
        rates = np.linspace(0.01, 0.7, 15)
        latencies = [model.mean_latency(rate) for rate in rates]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_throughput_capped_at_saturation(self):
        model = AnalyticNocModel(StarMesh(4, 4, 4))
        assert model.throughput_at(0.1) == pytest.approx(0.1)
        assert model.throughput_at(0.5) == pytest.approx(model.saturation_rate())


class TestLatencyCurve:
    def test_latency_result_contents(self):
        model = AnalyticNocModel(Mesh2D(4, 4))
        result = model.latency_curve(np.linspace(0.01, 0.5, 10))
        assert isinstance(result, LatencyResult)
        assert result.injection_rates.shape == (10,)
        assert result.mean_latency_cycles.shape == (10,)
        assert result.topology_name == "4x4 2D mesh"
        assert result.zero_load_latency() > 0.0

    def test_curve_validation(self):
        model = AnalyticNocModel(Mesh2D(3, 3))
        with pytest.raises(ValueError):
            model.latency_curve([])
        with pytest.raises(ValueError):
            model.latency_curve([-0.1, 0.2])
        with pytest.raises(ValueError):
            model.mean_latency(-1.0)

    def test_channel_loads_scale_linearly(self):
        model = AnalyticNocModel(Mesh2D(4, 4))
        loads_low = model.channel_loads(0.1)
        loads_high = model.channel_loads(0.2)
        for channel, load in loads_low.items():
            assert loads_high[channel] == pytest.approx(2.0 * load)

    def test_other_traffic_patterns(self):
        neighbour_model = AnalyticNocModel(Mesh2D(4, 4),
                                           traffic_class=NeighborTraffic)
        hotspot_model = AnalyticNocModel(Mesh2D(4, 4),
                                         traffic_class=HotspotTraffic,
                                         hotspot_modules=[5],
                                         hotspot_fraction=0.5)
        uniform_model = AnalyticNocModel(Mesh2D(4, 4))
        # Local traffic sustains a much higher injection rate than uniform;
        # hotspot traffic saturates earlier.
        assert neighbour_model.saturation_rate() > uniform_model.saturation_rate()
        assert hotspot_model.saturation_rate() < uniform_model.saturation_rate()


class TestScaling512Modules:
    def test_latency_gap_widens(self):
        # Fig. 8(b): at 512 modules the 2D mesh / 3D mesh latency gap grows
        # substantially compared to 64 modules.
        small_2d = AnalyticNocModel(Mesh2D(8, 8)).zero_load_latency()
        small_3d = AnalyticNocModel(Mesh3D(4, 4, 4)).zero_load_latency()
        large_2d = AnalyticNocModel(Mesh2D(32, 16)).zero_load_latency()
        large_3d = AnalyticNocModel(Mesh3D(8, 8, 8)).zero_load_latency()
        assert (large_2d - large_3d) > (small_2d - small_3d) * 2

    def test_3d_mesh_keeps_higher_saturation_at_512(self):
        large_2d = AnalyticNocModel(Mesh2D(32, 16)).saturation_rate()
        large_3d = AnalyticNocModel(Mesh3D(8, 8, 8)).saturation_rate()
        assert large_3d > 3.0 * large_2d


class TestMetrics:
    def test_average_hop_count_small_meshes(self):
        # 2x2 mesh: average Manhattan distance over distinct pairs = 4/3.
        assert average_hop_count(Mesh2D(2, 2)) == pytest.approx(4.0 / 3.0)

    def test_average_hop_count_concentration_reduces_hops(self):
        assert average_hop_count(StarMesh(4, 4, 4)) < \
            average_hop_count(Mesh2D(8, 8))

    def test_bisection_links(self):
        # 8x8 mesh cut across the middle: 8 bidirectional = 16 unidirectional.
        assert bisection_links(Mesh2D(8, 8)) == 16
        # 4x4x4 mesh: 16 bidirectional vertical cut = 32 unidirectional.
        assert bisection_links(Mesh3D(4, 4, 4)) == 32

    def test_bisection_bandwidth_per_module_ordering(self):
        # The 3D mesh has the highest, the star-mesh the lowest bisection
        # bandwidth per module — the structural reason for Fig. 8's ordering.
        mesh2d = bisection_bandwidth_per_module(Mesh2D(8, 8))
        star = bisection_bandwidth_per_module(StarMesh(4, 4, 4))
        mesh3d = bisection_bandwidth_per_module(Mesh3D(4, 4, 4))
        assert star < mesh2d < mesh3d

    def test_saturation_detection_from_curve(self):
        rates = np.linspace(0.05, 0.5, 10)
        latencies = np.where(rates < 0.4, 10.0, np.inf)
        assert saturation_injection_rate(rates, latencies) == pytest.approx(0.4)

    def test_saturation_detection_no_saturation(self):
        rates = np.linspace(0.05, 0.5, 10)
        latencies = np.full(10, 12.0)
        assert saturation_injection_rate(rates, latencies) == pytest.approx(0.5)

    def test_saturation_detection_validation(self):
        with pytest.raises(ValueError):
            saturation_injection_rate([], [])
        with pytest.raises(ValueError):
            saturation_injection_rate([0.1], [10.0], latency_threshold_factor=0.5)

    def test_latency_throughput_summary(self):
        model = AnalyticNocModel(Mesh2D(4, 4))
        rates = np.linspace(0.01, 1.0, 40)
        curve = model.latency_curve(rates)
        zero_load, saturation = latency_throughput_summary(
            rates, curve.mean_latency_cycles)
        assert zero_load == pytest.approx(model.zero_load_latency(), rel=0.05)
        assert saturation == pytest.approx(model.saturation_rate(), abs=0.1)

    def test_summary_requires_finite_points(self):
        with pytest.raises(ValueError):
            latency_throughput_summary([0.1, 0.2], [np.inf, np.inf])

    def test_zero_load_latency_validation(self):
        with pytest.raises(ValueError):
            zero_load_latency(Mesh2D(2, 2), pipeline_latency_cycles=0.0)
