"""Tests for the resumable BER tally core (repro.coding.ber.BerTally,
simulate_tally, simulate_adaptive) and its fixed-seed regression anchors."""

import numpy as np
import pytest

from repro.coding.ber import (
    BerPoint,
    BerSimulator,
    BerTally,
    batch_seed_sequence,
)
from repro.utils.statistics import StoppingRule


def uncoded_simulator(codeword_length=200, batch_size=8):
    """Cheap hard-decision simulator — plentiful errors, no decoder cost."""
    return BerSimulator(codeword_length=codeword_length, rate=1.0,
                        decode=lambda llrs: (np.asarray(llrs) < 0).astype(int),
                        batch_size=batch_size)


@pytest.fixture(scope="module")
def ldpc_cc_simulator():
    from repro.scenarios.specs import CodingSpec

    spec = CodingSpec(lifting_factor=25, termination_length=10)
    return spec.make_ber_simulator(batch_size=8)


class TestBerTally:
    def test_roundtrip(self):
        tally = BerTally(n_codewords=5, n_bits=1000, n_bit_errors=17,
                         n_frame_errors=3, n_batches=2, truncated=True)
        assert BerTally.from_dict(tally.to_dict()) == tally

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown BerTally field"):
            BerTally.from_dict({"n_codewords": 1, "n_bits": 1,
                                "bogus": 2})

    @pytest.mark.parametrize("field", ["n_codewords", "n_bits",
                                       "n_bit_errors", "n_frame_errors",
                                       "n_batches"])
    def test_from_dict_rejects_bad_counts(self, field):
        with pytest.raises(ValueError, match=field):
            BerTally.from_dict({field: -1})
        with pytest.raises(ValueError, match=field):
            BerTally.from_dict({field: 1.5})

    def test_merge_adds_counts_and_is_sticky_on_truncation(self):
        a = BerTally(n_codewords=2, n_bits=400, n_bit_errors=10,
                     n_frame_errors=1, n_batches=1)
        b = BerTally(n_codewords=3, n_bits=600, n_bit_errors=5,
                     n_frame_errors=2, n_batches=2, truncated=True)
        merged = a.merge(b)
        assert merged is a
        assert a == BerTally(n_codewords=5, n_bits=1000, n_bit_errors=15,
                             n_frame_errors=3, n_batches=3, truncated=True)
        # Sticky: merging a clean tally does not clear the flag.
        a.merge(BerTally())
        assert a.truncated

    def test_copy_is_independent(self):
        a = BerTally(n_codewords=1, n_bits=100, n_bit_errors=2,
                     n_frame_errors=1, n_batches=1)
        b = a.copy()
        b.n_bit_errors += 5
        assert a.n_bit_errors == 2

    def test_rates_on_empty_tally(self):
        tally = BerTally()
        assert tally.bit_error_rate == 0.0
        assert tally.frame_error_rate == 0.0

    def test_to_point(self):
        tally = BerTally(n_codewords=4, n_bits=800, n_bit_errors=8,
                         n_frame_errors=2, n_batches=1, truncated=True)
        point = tally.to_point(2.5)
        assert point == BerPoint(ebn0_db=2.5, bit_error_rate=0.01,
                                 block_error_rate=0.5, n_bits=800,
                                 n_bit_errors=8, n_codewords=4,
                                 truncated=True)

    def test_to_point_rejects_empty_tally(self):
        with pytest.raises(ValueError, match="empty tally"):
            BerTally().to_point(1.0)


class TestSimulateTally:
    def test_two_resumed_calls_equal_one_fixed_count_call(self):
        # simulate() consumes one sequential stream, so appending 8+8
        # codewords on the same generator equals one 16-codeword run.
        sim = uncoded_simulator()
        one_shot = sim.simulate(3.0, n_codewords=16, rng=11)
        tally = BerTally()
        generator = np.random.default_rng(11)
        sim.simulate_tally(3.0, tally, rng=generator, n_codewords=8)
        sim.simulate_tally(3.0, tally, rng=generator, n_codewords=8)
        assert tally.to_point(3.0) == one_shot

    def test_saturated_max_bit_errors_appends_nothing(self):
        sim = uncoded_simulator()
        tally = sim.simulate_tally(0.0, BerTally(), rng=0, n_codewords=8,
                                   max_bit_errors=10)
        assert tally.truncated
        snapshot = tally.copy()
        sim.simulate_tally(0.0, tally, rng=1, n_codewords=8,
                           max_bit_errors=10)
        assert tally == snapshot


class TestFixedSeedRegression:
    """The refactor must be byte-identical to the pre-tally simulate()."""

    @pytest.mark.parametrize("ebn0_db, expected", [
        (1.0, (0.058, 0.8125, 8000, 464, 16)),
        (2.5, (0.004875, 0.125, 8000, 39, 16)),
        (3.5, (0.00275, 0.125, 8000, 22, 16)),
    ])
    def test_ldpc_cc_points_unchanged(self, ldpc_cc_simulator, ebn0_db,
                                      expected):
        # Captured from the pre-refactor implementation at these seeds.
        point = ldpc_cc_simulator.simulate(ebn0_db, n_codewords=16, rng=123)
        ber, bler, n_bits, n_bit_errors, n_codewords = expected
        assert point.bit_error_rate == ber
        assert point.block_error_rate == bler
        assert point.n_bits == n_bits
        assert point.n_bit_errors == n_bit_errors
        assert point.n_codewords == n_codewords
        assert point.truncated is False

    def test_truncated_run_unchanged(self, ldpc_cc_simulator):
        point = ldpc_cc_simulator.simulate(1.0, n_codewords=16, rng=7,
                                           max_bit_errors=50)
        assert point.bit_error_rate == 0.05733333333333333
        assert (point.n_bits, point.n_bit_errors, point.n_codewords) \
            == (1500, 86, 3)
        assert point.truncated is True

    def test_reference_path_agrees_and_reports_truncation(
            self, ldpc_cc_simulator):
        batched = ldpc_cc_simulator.simulate(1.0, n_codewords=16, rng=7,
                                             max_bit_errors=50)
        reference = ldpc_cc_simulator.simulate_reference(
            1.0, n_codewords=16, rng=7, max_bit_errors=50)
        assert reference == batched


class TestSimulateAdaptive:
    LOOSE = StoppingRule(rel_ci_target=0.4, min_units=8, max_units=512,
                         min_errors=10)
    TIGHT = StoppingRule(rel_ci_target=0.08, min_units=8, max_units=512,
                         min_errors=10)

    def test_stops_once_rule_satisfied(self):
        sim = uncoded_simulator()
        tally = sim.simulate_adaptive(3.0, self.LOOSE,
                                      np.random.SeedSequence(0))
        assert self.LOOSE.satisfied(tally.n_bit_errors, tally.n_bits,
                                    tally.n_codewords)
        assert tally.n_codewords == tally.n_batches * sim.batch_size

    def test_resumed_tally_equals_one_shot(self):
        # The tentpole property: run to a loose target, store, resume to
        # a tight target — identical to running the tight target cold.
        sim = uncoded_simulator()
        root = np.random.SeedSequence(42, spawn_key=(3,))
        loose = sim.simulate_adaptive(3.0, self.LOOSE, root)
        stored = BerTally.from_dict(loose.to_dict())   # JSON round-trip
        resumed = sim.simulate_adaptive(3.0, self.TIGHT, root,
                                        tally=stored)
        one_shot = sim.simulate_adaptive(3.0, self.TIGHT, root)
        assert resumed == one_shot
        assert resumed.n_codewords > loose.n_codewords

    def test_ldpc_cc_resume_identity(self, ldpc_cc_simulator):
        root = np.random.SeedSequence(42, spawn_key=(3,))
        loose = ldpc_cc_simulator.simulate_adaptive(1.5, self.LOOSE, root)
        resumed = ldpc_cc_simulator.simulate_adaptive(
            1.5, self.TIGHT, root, tally=loose.copy())
        one_shot = ldpc_cc_simulator.simulate_adaptive(1.5, self.TIGHT,
                                                       root)
        assert resumed == one_shot
        assert resumed.n_codewords > loose.n_codewords

    def test_max_units_caps_the_run(self):
        sim = uncoded_simulator(codeword_length=50)
        rule = StoppingRule(rel_ci_target=1e-9, min_units=1, max_units=12,
                            min_errors=10**9)
        tally = sim.simulate_adaptive(3.0, rule, np.random.SeedSequence(1))
        # The cap is soft — checked at batch boundaries.
        assert tally.n_codewords == 16
        assert tally.n_batches == 2

    def test_accepts_plain_seed_material(self):
        sim = uncoded_simulator()
        a = sim.simulate_adaptive(3.0, self.LOOSE, 17)
        b = sim.simulate_adaptive(3.0, self.LOOSE,
                                  np.random.SeedSequence(17))
        assert a == b


class TestSimulateBatches:
    def test_merged_shards_equal_the_adaptive_tally(self):
        # The sharded-dispatch identity: per-index batch tallies merged
        # in index order reproduce simulate_adaptive byte for byte.
        sim = uncoded_simulator()
        root = np.random.SeedSequence(42, spawn_key=(3,))
        adaptive = sim.simulate_adaptive(3.0, TestSimulateAdaptive.LOOSE,
                                         root)
        shards = sim.simulate_batches(3.0, root,
                                      range(adaptive.n_batches))
        merged = BerTally()
        for shard in shards:
            merged = merged.merge(shard)
        assert merged == adaptive
        assert merged.to_dict() == adaptive.to_dict()

    def test_indices_are_independent_of_call_grouping(self):
        # Batch b depends only on (params, root, b): computing indices
        # one at a time equals computing them in one call.
        sim = uncoded_simulator()
        root = np.random.SeedSequence(7)
        together = sim.simulate_batches(3.0, root, [0, 1, 2, 3])
        separate = [sim.simulate_batches(3.0, root, [index])[0]
                    for index in (0, 1, 2, 3)]
        assert [tally.to_dict() for tally in together] \
            == [tally.to_dict() for tally in separate]
        assert all(tally.n_batches == 1 for tally in together)


class TestBatchSeedSequence:
    def test_matches_spawned_children_without_mutating_root(self):
        root = np.random.SeedSequence(99, spawn_key=(2,))
        derived = [batch_seed_sequence(root, b) for b in range(3)]
        spawned = np.random.SeedSequence(99, spawn_key=(2,)).spawn(3)
        for ours, theirs in zip(derived, spawned):
            assert ours.entropy == theirs.entropy
            assert tuple(ours.spawn_key) == tuple(theirs.spawn_key)
        assert root.n_children_spawned == 0
