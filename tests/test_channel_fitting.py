"""Unit tests for repro.channel.fitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.fitting import (
    fit_from_sweeps,
    fit_path_loss_exponent,
    pathloss_samples_from_sweeps,
)
from repro.channel.measurement import SyntheticVNA
from repro.channel.pathloss import log_distance_path_loss_db


class TestFitPathLossExponent:
    def test_recovers_known_exponent_exactly(self):
        distances = np.linspace(0.02, 0.2, 12)
        losses = log_distance_path_loss_db(distances, 40.0, 0.01, 2.3)
        fit = fit_path_loss_exponent(distances, losses)
        assert fit.exponent == pytest.approx(2.3, abs=1e-9)
        assert fit.reference_loss_db == pytest.approx(40.0, abs=1e-9)
        assert fit.rms_error_db == pytest.approx(0.0, abs=1e-9)

    def test_noisy_data_recovers_exponent_approximately(self):
        rng = np.random.default_rng(0)
        distances = np.linspace(0.02, 0.2, 40)
        losses = log_distance_path_loss_db(distances, 40.0, 0.01, 2.0)
        losses = losses + rng.normal(0.0, 0.5, size=losses.shape)
        fit = fit_path_loss_exponent(distances, losses)
        assert fit.exponent == pytest.approx(2.0, abs=0.15)
        assert fit.rms_error_db < 1.0

    def test_to_model_round_trip(self):
        distances = np.linspace(0.02, 0.2, 12)
        losses = log_distance_path_loss_db(distances, 40.0, 0.01, 2.1)
        model = fit_path_loss_exponent(distances, losses).to_model()
        np.testing.assert_allclose(model.path_loss_db(distances), losses,
                                   atol=1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fit_path_loss_exponent([0.1], [50.0])
        with pytest.raises(ValueError):
            fit_path_loss_exponent([0.1, 0.2], [50.0, 55.0, 60.0])
        with pytest.raises(ValueError):
            fit_path_loss_exponent([0.1, -0.2], [50.0, 55.0])
        with pytest.raises(ValueError):
            fit_path_loss_exponent([0.1, 0.1], [50.0, 50.0])

    @given(st.floats(min_value=1.5, max_value=3.5),
           st.floats(min_value=30.0, max_value=60.0))
    @settings(max_examples=25)
    def test_fit_is_exact_on_model_data(self, exponent, reference_loss):
        distances = np.logspace(np.log10(0.02), np.log10(0.3), 8)
        losses = log_distance_path_loss_db(distances, reference_loss, 0.01,
                                           exponent)
        fit = fit_path_loss_exponent(distances, losses)
        assert fit.exponent == pytest.approx(exponent, abs=1e-8)


class TestFitFromSweeps:
    def test_freespace_exponent_close_to_2(self):
        # Fig. 1: the computed free-space exponent is n = 2.000.
        vna = SyntheticVNA(n_points=512, rng=1)
        sweeps = vna.distance_sweep(np.linspace(0.02, 0.2, 10), "freespace")
        fit = fit_from_sweeps(sweeps, antenna_gain_db=2 * 9.5)
        assert fit.exponent == pytest.approx(2.000, abs=0.01)

    def test_copper_board_exponent_close_to_paper(self):
        # Fig. 1: parallel copper boards give n = 2.0454.
        vna = SyntheticVNA(n_points=512, rng=1)
        sweeps = [vna.measure_parallel_copper_boards(float(d))
                  for d in np.linspace(0.05, 0.2, 10)]
        fit = fit_from_sweeps(sweeps, antenna_gain_db=2 * 9.5)
        assert fit.exponent == pytest.approx(2.0454, abs=0.02)

    def test_reference_loss_matches_friis_anchor(self):
        vna = SyntheticVNA(n_points=512, rng=1)
        sweeps = vna.distance_sweep(np.linspace(0.02, 0.2, 10), "freespace")
        fit = fit_from_sweeps(sweeps, antenna_gain_db=2 * 9.5)
        # Free-space pathloss at the 1 cm reference distance is ~39.8 dB.
        assert fit.reference_loss_db == pytest.approx(39.8, abs=0.5)

    def test_samples_extraction(self):
        vna = SyntheticVNA(n_points=256, rng=1)
        sweeps = vna.distance_sweep([0.05, 0.1, 0.15], "freespace")
        distances, losses = pathloss_samples_from_sweeps(sweeps, 2 * 9.5)
        assert distances.shape == (3,)
        assert losses.shape == (3,)
        assert np.all(np.diff(losses) > 0)

    def test_empty_sweep_list_rejected(self):
        with pytest.raises(ValueError):
            fit_from_sweeps([], antenna_gain_db=19.0)
