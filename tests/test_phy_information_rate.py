"""Unit tests for repro.phy.information_rate (the Fig. 6 quantities)."""

import numpy as np
import pytest

from repro.phy.information_rate import (
    ask_awgn_information_rate,
    one_bit_no_oversampling_rate,
    sequence_information_rate,
    symbolwise_information_rate,
)
from repro.phy.modulation import AskConstellation
from repro.phy.pulse import (
    rectangular_pulse,
    sequence_optimized_pulse,
    suboptimal_unique_detection_pulse,
    symbolwise_optimized_pulse,
)

N_SYMBOLS = 6_000


class TestUnquantizedReference:
    def test_saturates_at_two_bits(self):
        assert ask_awgn_information_rate(35.0) == pytest.approx(2.0, abs=1e-3)

    def test_low_snr_small_rate(self):
        assert ask_awgn_information_rate(-10.0) < 0.2

    def test_monotonic_in_snr(self):
        rates = [ask_awgn_information_rate(snr) for snr in (-5, 0, 5, 10, 15, 20)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_binary_constellation_saturates_at_one(self):
        rate = ask_awgn_information_rate(30.0, AskConstellation(2))
        assert rate == pytest.approx(1.0, abs=1e-3)

    def test_quadrature_validation(self):
        with pytest.raises(ValueError):
            ask_awgn_information_rate(10.0, n_quadrature=1)

    def test_awgn_capacity_upper_bound(self):
        # Uniform 4-ASK cannot beat 0.5*log2(1+SNR).
        for snr in (0.0, 10.0, 20.0):
            shannon = 0.5 * np.log2(1.0 + 10 ** (snr / 10.0))
            assert ask_awgn_information_rate(snr) <= shannon + 1e-9


class TestOneBitNoOversampling:
    def test_saturates_at_one_bit(self):
        assert one_bit_no_oversampling_rate(30.0) == pytest.approx(1.0, abs=1e-3)

    def test_below_unquantized(self):
        for snr in (-5.0, 0.0, 10.0, 20.0):
            assert one_bit_no_oversampling_rate(snr) <= \
                ask_awgn_information_rate(snr) + 1e-9

    def test_monotonic_in_snr(self):
        rates = [one_bit_no_oversampling_rate(snr) for snr in (-5, 0, 5, 10, 20)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))


class TestSymbolwiseRate:
    def test_rect_pulse_oversampling_beats_no_oversampling_at_moderate_snr(self):
        # Fig. 6: "Rect 1Bit-OS" exceeds "1Bit No-OS" at moderate SNR.
        rate_oversampled = symbolwise_information_rate(rectangular_pulse(5), 10.0)
        rate_single = one_bit_no_oversampling_rate(10.0)
        assert rate_oversampled > rate_single + 0.1

    def test_rect_pulse_saturates_at_one_bit(self):
        # Without ISI all 5 samples agree in the noise-free limit.
        assert symbolwise_information_rate(rectangular_pulse(5), 35.0) == \
            pytest.approx(1.0, abs=0.01)

    def test_designed_pulse_exceeds_rect_at_design_snr(self):
        designed = symbolwise_information_rate(symbolwise_optimized_pulse(), 25.0)
        rect = symbolwise_information_rate(rectangular_pulse(5), 25.0)
        assert designed > rect + 0.3

    def test_symbolwise_design_reaches_about_1p5_bits(self):
        # Fig. 6: the symbolwise-optimised design plateaus around 1.5 bpcu.
        rate = symbolwise_information_rate(symbolwise_optimized_pulse(), 25.0)
        assert 1.35 <= rate <= 1.7

    def test_never_exceeds_constellation_entropy(self):
        for snr in (0.0, 15.0, 30.0):
            assert symbolwise_information_rate(sequence_optimized_pulse(), snr) \
                <= 2.0 + 1e-9

    def test_memoryless_pulse_matches_sequence_rate(self):
        # Without ISI the symbolwise and sequence rates coincide.
        symbolwise = symbolwise_information_rate(rectangular_pulse(5), 10.0)
        sequence = sequence_information_rate(rectangular_pulse(5), 10.0,
                                             n_symbols=20_000, rng=0)
        assert sequence == pytest.approx(symbolwise, abs=0.03)


class TestSequenceRate:
    def test_sequence_design_approaches_two_bits(self):
        # Fig. 6: the sequence-optimised ISI design recovers nearly the full
        # 2 bit/channel use of 4-ASK at high SNR.
        rate = sequence_information_rate(sequence_optimized_pulse(), 30.0,
                                         n_symbols=N_SYMBOLS, rng=1)
        assert rate > 1.9

    def test_sequence_beats_symbolwise_on_same_pulse(self):
        pulse = sequence_optimized_pulse()
        sequence = sequence_information_rate(pulse, 25.0, n_symbols=N_SYMBOLS,
                                             rng=1)
        symbolwise = symbolwise_information_rate(pulse, 25.0)
        assert sequence > symbolwise

    def test_suboptimal_design_reaches_two_bits_at_high_snr(self):
        rate = sequence_information_rate(suboptimal_unique_detection_pulse(),
                                         35.0, n_symbols=N_SYMBOLS, rng=1)
        assert rate > 1.9

    def test_rect_pulse_sequence_rate_saturates_at_one_bit(self):
        rate = sequence_information_rate(rectangular_pulse(5), 35.0,
                                         n_symbols=N_SYMBOLS, rng=1)
        assert rate == pytest.approx(1.0, abs=0.02)

    def test_bounded_by_unquantized_reference(self):
        for snr in (0.0, 10.0, 25.0):
            sequence = sequence_information_rate(sequence_optimized_pulse(), snr,
                                                 n_symbols=N_SYMBOLS, rng=2)
            assert sequence <= ask_awgn_information_rate(snr) + 0.05

    def test_estimate_is_reproducible_with_seed(self):
        a = sequence_information_rate(sequence_optimized_pulse(), 15.0,
                                      n_symbols=2_000, rng=7)
        b = sequence_information_rate(sequence_optimized_pulse(), 15.0,
                                      n_symbols=2_000, rng=7)
        assert a == pytest.approx(b)

    def test_short_blocks_rejected(self):
        with pytest.raises(ValueError):
            sequence_information_rate(rectangular_pulse(5), 10.0, n_symbols=10)

    def test_monotonic_in_snr_for_designed_pulse(self):
        rates = [sequence_information_rate(sequence_optimized_pulse(), snr,
                                           n_symbols=N_SYMBOLS, rng=3)
                 for snr in (5.0, 15.0, 25.0)]
        assert rates[0] < rates[1] < rates[2]
