"""Fig. 4 — required transmit power vs target SNR.

Paper series: shortest link (100 mm), longest link (300 mm) and longest
link with the Butler-matrix direction mismatch, for SNR targets 0-35 dB.
"""

import numpy as np

from conftest import print_table, run_once
from repro.channel import LinkBudget


def _reproduce_figure():
    budget = LinkBudget()
    snrs = np.arange(0.0, 36.0, 5.0)
    return {
        "snrs": snrs,
        "short": np.asarray(budget.required_tx_power_dbm(snrs, 0.1)),
        "long": np.asarray(budget.required_tx_power_dbm(snrs, 0.3)),
        "long_butler": np.asarray(
            budget.required_tx_power_dbm(snrs, 0.3, True)),
    }


def test_fig4_required_tx_power(benchmark):
    data = run_once(benchmark, _reproduce_figure)
    rows = [f"  {snr:6.0f} {s:10.1f} {l:10.1f} {b:14.1f}"
            for snr, s, l, b in zip(data["snrs"], data["short"], data["long"],
                                    data["long_butler"])]
    print_table("Fig. 4 — required TX power [dBm]",
                "  SNR[dB]   100 mm     300 mm    300 mm+Butler", rows)
    # Curve ordering and spacings of the paper.
    assert np.all(data["short"] < data["long"])
    assert np.all(data["long"] < data["long_butler"])
    np.testing.assert_allclose(data["long"] - data["short"], 9.54, atol=0.1)
    np.testing.assert_allclose(data["long_butler"] - data["long"], 5.0,
                               atol=1e-9)
    # All three curves are straight lines with slope 1 dB/dB.
    for curve in ("short", "long", "long_butler"):
        np.testing.assert_allclose(np.diff(data[curve]), 5.0, atol=1e-9)
    # Anchor points: roughly -15 dBm at 0 dB SNR and 20 dBm at 35 dB SNR for
    # the shortest link; the worst case tops out near 40 dBm (as in Fig. 4).
    assert -20.0 < data["short"][0] < -10.0
    assert 15.0 < data["short"][-1] < 25.0
    assert 33.0 < data["long_butler"][-1] < 45.0
