"""Adaptive-precision Monte-Carlo — codeword economy of CI-targeted stops.

Off-paper benchmark for the sequential measurement harness: sweep the
(4,8)-regular LDPC-CC waterfall with a relative-CI stopping rule
(:meth:`repro.coding.ber.BerSimulator.simulate_adaptive`) and compare the
codeword budget against the fixed-count design that achieves the *same*
worst-case CI width.  A fixed-count sweep must size every point for its
hardest (fewest-errors-per-codeword) point; the adaptive sweep spends
codewords where the information is, so on a waterfall grid dominated by
high-error points it is asserted to need **at least 5x fewer codewords**
overall — the headline economy claim recorded in EXPERIMENTS.md.
"""

import numpy as np

from conftest import print_table, run_once
from repro.scenarios.specs import CodingSpec
from repro.utils.statistics import StoppingRule

#: Waterfall grid: many cheap (error-rich) points plus one deep point —
#: the regime adaptive stopping is built for.  The deep point dominates
#: the fixed-count design's budget.
EBN0_GRID_DB = (0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 3.5)
RULE = StoppingRule(rel_ci_target=0.2, min_units=4, max_units=4096,
                    min_errors=10)
SEED = 7
BATCH_SIZE = 4
#: Asserted economy floor (measured ~7.5x on this grid; 5x is the claim).
MIN_CODEWORD_REDUCTION = 5.0


def _sweep():
    spec = CodingSpec(lifting_factor=25, termination_length=10)
    simulator = spec.make_ber_simulator(batch_size=BATCH_SIZE)
    tallies = []
    for index, ebn0_db in enumerate(EBN0_GRID_DB):
        seed_sequence = np.random.SeedSequence(SEED, spawn_key=(index,))
        tallies.append(simulator.simulate_adaptive(ebn0_db, RULE,
                                                   seed_sequence))
    return tallies


def test_adaptive_ber_codeword_economy(benchmark):
    tallies = run_once(benchmark, _sweep)

    rows = []
    for ebn0_db, tally in zip(EBN0_GRID_DB, tallies):
        width = RULE.relative_half_width(tally.n_bit_errors, tally.n_bits)
        rows.append(f"{ebn0_db:7.2f} {tally.n_codewords:6d} "
                    f"{tally.n_bit_errors:7d} {tally.bit_error_rate:12.4e} "
                    f"{width:8.3f}")
    print_table("Adaptive coded-BER sweep (rel CI target "
                f"{RULE.rel_ci_target})",
                "Eb/N0dB  codewords  errors          BER  rel.width", rows)

    # Every point stopped because its CI target was met, not because the
    # budget cap fired.
    for tally in tallies:
        assert RULE.satisfied(tally.n_bit_errors, tally.n_bits,
                              tally.n_codewords)
        assert tally.n_codewords < RULE.max_units
        assert RULE.relative_half_width(tally.n_bit_errors, tally.n_bits) \
            <= RULE.rel_ci_target

    # Equal-worst-case-CI fixed design: every point gets the codeword
    # budget of the hardest point.
    adaptive_total = sum(tally.n_codewords for tally in tallies)
    fixed_total = len(EBN0_GRID_DB) * max(tally.n_codewords
                                          for tally in tallies)
    reduction = fixed_total / adaptive_total
    print(f"\nadaptive {adaptive_total} vs fixed-count {fixed_total} "
          f"codewords - {reduction:.1f}x fewer")
    assert reduction >= MIN_CODEWORD_REDUCTION
