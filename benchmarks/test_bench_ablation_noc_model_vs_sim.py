"""Ablation — analytic queueing model vs cycle-level simulation.

Design question from DESIGN.md: does the calibrated queueing model (the
tool behind Fig. 8) track an independent cycle-level flit simulator?  The
benchmark compares mean latencies at low and medium load for the 64-module
3D mesh and 2D mesh.  The simulated load points run as an engine-driven
:meth:`~repro.noc.simulator.NocSimulator.latency_sweep`, one independently
seeded generator per (topology, rate) point.
"""

from conftest import print_table, run_once
from repro.core import SweepEngine
from repro.noc import AnalyticNocModel, Mesh2D, Mesh3D, NocSimulator

RATES = (0.05, 0.15, 0.25)
SEED = 0


def _reproduce():
    engine = SweepEngine()
    results = []
    for topology_factory in (lambda: Mesh2D(8, 8), lambda: Mesh3D(4, 4, 4)):
        topology = topology_factory()
        model = AnalyticNocModel(topology)
        simulator = NocSimulator(topology)
        simulated = simulator.latency_sweep(RATES, n_cycles=4_000,
                                            warmup_cycles=1_000, rng=SEED,
                                            engine=engine)
        for rate, point in zip(RATES, simulated):
            results.append({
                "topology": topology.name,
                "rate": rate,
                "analytic": model.mean_latency(rate),
                "simulated": point.mean_latency_cycles,
            })
    return results


def test_ablation_analytic_model_vs_simulator(benchmark):
    results = run_once(benchmark, _reproduce)
    rows = [f"  {r['topology']:16s} {r['rate']:5.2f} {r['analytic']:10.2f} "
            f"{r['simulated']:10.2f}" for r in results]
    print_table("Ablation — analytic model vs cycle-level simulator",
                "  topology          rate   analytic  simulated", rows)
    for entry in results:
        # Within 25 % (or 3 cycles) at low load; near saturation the
        # calibrated analytic model is intentionally more conservative than
        # the idealised output-queued simulator, so allow 50 % there.
        tolerance = 0.25 if entry["rate"] <= 0.2 else 0.5
        difference = abs(entry["analytic"] - entry["simulated"])
        assert difference < max(tolerance * entry["simulated"], 3.0), entry
