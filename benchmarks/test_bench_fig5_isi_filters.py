"""Fig. 5 — impulse responses of the four ISI filter designs.

Paper panels: (a) rectangular pulse without ISI, (b) ISI optimised for
symbol-by-symbol detection at 25 dB, (c) ISI optimised for sequence
detection at 25 dB, (d) the noise-agnostic suboptimal design based on
unique detection.  The benchmark regenerates the four designs (the two
optimised ones via the shipped optimiser results), reports their taps and
verifies their defining properties.
"""

import numpy as np

from conftest import print_table, run_once
from repro.phy import (
    rectangular_pulse,
    sequence_optimized_pulse,
    suboptimal_unique_detection_pulse,
    symbolwise_optimized_pulse,
    symbolwise_information_rate,
    sequence_information_rate,
    unique_detection_fraction,
)

DESIGN_SNR_DB = 25.0


def _reproduce_figure():
    designs = {
        "(a) rectangular, no ISI": rectangular_pulse(5),
        "(b) optimal ISI, symbol-by-symbol": symbolwise_optimized_pulse(),
        "(c) optimal ISI, sequence detection": sequence_optimized_pulse(),
        "(d) suboptimal unique-detection": suboptimal_unique_detection_pulse(),
    }
    properties = {}
    for label, pulse in designs.items():
        properties[label] = {
            "taps": pulse.taps,
            "unique_detection": unique_detection_fraction(pulse),
            "symbolwise_rate": symbolwise_information_rate(pulse,
                                                           DESIGN_SNR_DB),
            "sequence_rate": sequence_information_rate(pulse, DESIGN_SNR_DB,
                                                       n_symbols=6_000, rng=0),
        }
    return properties


def test_fig5_isi_filter_designs(benchmark):
    data = run_once(benchmark, _reproduce_figure)
    rows = []
    for label, props in data.items():
        rows.append(f"  {label:38s} unique={props['unique_detection']:4.2f} "
                    f"I_sym={props['symbolwise_rate']:5.2f} "
                    f"I_seq={props['sequence_rate']:5.2f}")
        rows.append(f"      taps: {np.round(props['taps'], 3)}")
    print_table("Fig. 5 — ISI filter designs at 25 dB SNR",
                "  design                                   properties", rows)
    rect = data["(a) rectangular, no ISI"]
    symbolwise = data["(b) optimal ISI, symbol-by-symbol"]
    sequence = data["(c) optimal ISI, sequence detection"]
    suboptimal = data["(d) suboptimal unique-detection"]
    # (a) has no ISI and therefore no unique detection of 4-ASK.
    assert rect["unique_detection"] == 0.0
    assert np.allclose(rect["taps"][5:] if rect["taps"].size > 5 else 0.0, 0.0)
    # (b) beats the rectangular pulse for symbol-by-symbol detection.
    assert symbolwise["symbolwise_rate"] > rect["symbolwise_rate"] + 0.3
    # (c) beats (b) under sequence detection.
    assert sequence["sequence_rate"] > symbolwise["symbolwise_rate"]
    assert sequence["sequence_rate"] > 1.85
    # (d) is designed purely for unique detection and achieves it fully.
    assert suboptimal["unique_detection"] == 1.0
    # The designed pulses all spread energy into the following symbol.
    for label in ("(b) optimal ISI, symbol-by-symbol",
                  "(c) optimal ISI, sequence detection",
                  "(d) suboptimal unique-detection"):
        assert np.max(np.abs(data[label]["taps"][5:])) > 0.1
