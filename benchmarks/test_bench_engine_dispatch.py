"""Warm dispatch — the gate for the persistent worker pool.

Two measured claims (EXPERIMENTS.md, "Warm dispatch"):

* **Warm-pool repeat sweeps** — a large-state worker (an LDPC-style
  lookup table of several MB) swept repeatedly through one
  :class:`~repro.core.engine.SweepEngine` must beat the frozen
  pre-warm-dispatch baseline (a fresh ``ProcessPoolExecutor`` per sweep
  call, the full worker pickled with every point) by **at least 3x**.
  The workload is overhead-dominated by construction, so the floor holds
  even on a single-core runner.
* **Deterministic intra-point sharding** — one deep adaptive point
  (fixed batch budget via the ``max_units`` cap) split across 4 workers
  must be **byte-identical** to the serial run (asserted always) and at
  least **2.5x** faster (asserted only where 4 physical cores exist;
  on fewer cores sharding one point cannot beat serial).

``REPRO_DISPATCH_BENCH=reduced`` shrinks the workload for CI smoke runs;
the warm-pool floor still applies there.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

import numpy as np

from conftest import print_table, run_once
from repro.core.engine import SweepEngine, plan_sweep
from repro.core.store import MemoryStore
from repro.utils.hashing import canonical_json
from repro.utils.statistics import StoppingRule

REDUCED = os.environ.get("REPRO_DISPATCH_BENCH", "").lower() == "reduced"

#: Warm-pool workload: repeat sweeps of a cheap function over big state.
TABLE_MB = 4 if REDUCED else 8
N_POINTS = 8 if REDUCED else 16
N_SWEEPS = 2 if REDUCED else 3
N_WORKERS = 2
MIN_WARM_SPEEDUP = 3.0

#: Sharded workload: one deep point, a fixed budget of heavy batches.
N_BATCHES = 16 if REDUCED else 64
DRAWS_PER_BATCH = 200_000 if REDUCED else 1_000_000
SHARD_WORKERS = 4
MIN_SHARD_SPEEDUP = 2.5


# ----------------------------------------------------------------------
# warm-pool repeat sweeps vs the frozen per-call-pool baseline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _LargeStateWorker:
    """Trivial per-point compute carrying a multi-MB lookup table —
    the dispatch-tax regime (LDPC tables, measured-channel datasets)."""

    table: np.ndarray = field(
        default_factory=lambda: np.arange(TABLE_MB * 131_072,
                                          dtype=np.float64))

    def __call__(self, params: Mapping[str, Any],
                 rng: np.random.Generator) -> float:
        index = int(params["i"]) % self.table.size
        return float(self.table[index] + rng.random())


def _call_point(worker, params, seed_sequence):
    return worker(params, np.random.default_rng(seed_sequence))


def _baseline_sweeps(worker, points):
    """The pre-warm-dispatch executor lifecycle, frozen in-file: every
    sweep call builds (and tears down) its own process pool, and every
    point's submission pickles the entire worker."""
    results = []
    for _ in range(N_SWEEPS):
        planned = plan_sweep(worker, points, rng=8,
                             key={"bench": "dispatch"})
        with ProcessPoolExecutor(max_workers=N_WORKERS) as executor:
            futures = [executor.submit(_call_point, worker, plan.params,
                                       plan.seed_sequence)
                       for plan in planned]
            results.append([future.result() for future in futures])
    return results


def _warm_sweeps(worker, points):
    with SweepEngine(n_workers=N_WORKERS, cache=False) as engine:
        results = [engine.sweep_values(worker, points, rng=8,
                                       key={"bench": "dispatch"})
                   for _ in range(N_SWEEPS)]
        stats = engine.dispatch_stats()
    return results, stats


def test_warm_pool_beats_per_call_pool(benchmark):
    worker = _LargeStateWorker()
    points = [{"i": index} for index in range(N_POINTS)]

    def _measure():
        start = time.perf_counter()
        baseline = _baseline_sweeps(worker, points)
        baseline_s = time.perf_counter() - start
        start = time.perf_counter()
        warm, stats = _warm_sweeps(worker, points)
        warm_s = time.perf_counter() - start
        return baseline, baseline_s, warm, warm_s, stats

    baseline, baseline_s, warm, warm_s, stats = run_once(benchmark,
                                                         _measure)
    speedup = baseline_s / warm_s
    print_table(
        f"Warm dispatch: {N_SWEEPS} sweeps x {N_POINTS} points, "
        f"{TABLE_MB} MB worker state, {N_WORKERS} workers",
        "variant          total_s", [
            f"per-call pool  {baseline_s:9.3f}",
            f"warm pool      {warm_s:9.3f}  ({speedup:.1f}x)",
        ])
    print(f"dispatch stats: {stats}")

    # Correctness before speed: identical values sweep-to-sweep and
    # against the frozen baseline.
    assert all(result == baseline[0] for result in baseline + warm)
    # One broadcast of the table, one executor generation, every point
    # after the first sweep a broadcast hit.
    assert stats["generation"] == 1
    assert stats["broadcasts"] == 1
    assert stats["broadcast_hits"] >= (N_SWEEPS - 1) * N_POINTS
    assert speedup >= MIN_WARM_SPEEDUP


# ----------------------------------------------------------------------
# deterministic intra-point sharding of one deep adaptive point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _DeepPointWorker:
    """Incremental + shard protocol over a heavy tail-count estimate.

    Batch ``b`` draws ``DRAWS_PER_BATCH`` normals from
    ``batch_seed_sequence(root, b)`` — content depends only on the batch
    index, so shard deltas merged in index order replay the serial run
    byte for byte.
    """

    draws: int = DRAWS_PER_BATCH

    def decode(self, stored) -> Dict[str, int]:
        if stored is None:
            return {"k": 0, "n": 0, "units": 0, "batches": 0}
        return {key: int(stored[key]) for key in ("k", "n", "units",
                                                  "batches")}

    def encode(self, state) -> Dict[str, int]:
        return dict(state)

    def satisfied(self, state, rule) -> bool:
        return rule.satisfied(state["k"], state["n"], state["units"])

    def _batch(self, params: Mapping[str, Any], seed_sequence,
               batch_index: int) -> Dict[str, int]:
        from repro.coding.ber import batch_seed_sequence

        child = batch_seed_sequence(seed_sequence, int(batch_index))
        draws = np.random.default_rng(child).standard_normal(self.draws)
        return {"k": int(np.count_nonzero(draws > params["threshold"])),
                "n": self.draws, "units": 1, "batches": 1}

    def advance(self, params, state, seed_sequence, rule):
        state = dict(state)
        while not self.satisfied(state, rule):
            state = self.absorb(state,
                                self._batch(params, seed_sequence,
                                            state["batches"]))
        return state

    def progress(self, state) -> int:
        return int(state["units"])

    def finalize(self, params, state) -> Dict[str, Any]:
        return {"tail_fraction": state["k"] / state["n"],
                "batches": state["batches"]}

    # -- shard protocol ------------------------------------------------
    def cursor(self, state) -> int:
        return int(state["batches"])

    def advance_shard(self, params, seed_sequence, batch_indices):
        return [self._batch(params, seed_sequence, index)
                for index in batch_indices]

    def absorb(self, state, delta):
        return {key: state[key] + delta[key] for key in state}


#: Unreachable CI target + hard cap: exactly N_BATCHES batches, always.
DEEP_RULE = StoppingRule(rel_ci_target=1e-12, min_units=1,
                         max_units=N_BATCHES, min_errors=10**15)
DEEP_POINT = [{"threshold": 2.0}]


def test_sharded_deep_point_matches_serial(benchmark):
    worker = _DeepPointWorker()

    def _measure():
        start = time.perf_counter()
        serial = SweepEngine(store=MemoryStore()).sweep_adaptive(
            worker, DEEP_POINT, DEEP_RULE, rng=5)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        with SweepEngine(n_workers=SHARD_WORKERS,
                         store=MemoryStore()) as engine:
            sharded = engine.sweep_adaptive(worker, DEEP_POINT, DEEP_RULE,
                                            rng=5)
        sharded_s = time.perf_counter() - start
        return serial, serial_s, sharded, sharded_s

    serial, serial_s, sharded, sharded_s = run_once(benchmark, _measure)
    speedup = serial_s / sharded_s
    print_table(
        f"Sharded deep point: {N_BATCHES} batches x {DRAWS_PER_BATCH} "
        f"draws, {SHARD_WORKERS} workers",
        "variant   total_s", [
            f"serial  {serial_s:9.3f}",
            f"sharded {sharded_s:9.3f}  ({speedup:.1f}x)",
        ])

    # Byte-identity is unconditional: sharding must be invisible.
    assert canonical_json([outcome.to_dict() for outcome in sharded]) \
        == canonical_json([outcome.to_dict() for outcome in serial])
    assert serial[0].adaptive["total_units"] == N_BATCHES
    # The speedup floor needs the physical cores to shard across.
    if (os.cpu_count() or 1) >= SHARD_WORKERS:
        assert speedup >= MIN_SHARD_SPEEDUP
    else:
        print(f"cpu_count={os.cpu_count()}: speedup floor "
              f"({MIN_SHARD_SPEEDUP}x) not asserted on this machine")
