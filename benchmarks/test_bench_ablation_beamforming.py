"""Ablation — Butler matrix vs ideal beamforming across all node pairs.

Design question from DESIGN.md: how much transmit power does the
Butler-matrix complexity trade-off cost across the whole board-to-board
geometry (not just the worst-case diagonal link of Table I)?
"""

import numpy as np

from conftest import print_table, run_once
from repro.channel import BoardToBoardGeometry, LinkBudget

TARGET_SNR_DB = 20.0


def _reproduce():
    geometry = BoardToBoardGeometry.paper_geometry()
    budget = LinkBudget()
    rows = []
    for distance in np.unique(np.round(geometry.link_distances_m(), 6)):
        ideal = float(budget.required_tx_power_dbm(TARGET_SNR_DB, distance))
        butler = float(budget.required_tx_power_dbm(TARGET_SNR_DB, distance,
                                                    include_butler_mismatch=True))
        rows.append({"distance_mm": distance * 1e3, "ideal_dbm": ideal,
                     "butler_dbm": butler})
    return rows


def test_ablation_butler_matrix_penalty(benchmark):
    results = run_once(benchmark, _reproduce)
    rows = [f"  {r['distance_mm']:9.1f} {r['ideal_dbm']:11.1f} "
            f"{r['butler_dbm']:12.1f}" for r in results]
    print_table(f"Ablation — TX power for {TARGET_SNR_DB:.0f} dB SNR: ideal vs "
                "Butler-matrix beamforming",
                "  dist [mm]  ideal [dBm]  Butler [dBm]", rows)
    for entry in results:
        assert entry["butler_dbm"] - entry["ideal_dbm"] == 5.0
    # Distances (and therefore powers) increase monotonically.
    powers = [entry["ideal_dbm"] for entry in results]
    assert powers == sorted(powers)
