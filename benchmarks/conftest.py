"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series so the output can be compared against the original
(see EXPERIMENTS.md for the side-by-side record).  Heavy computations run
exactly once per benchmark (``rounds=1``) — the interesting output is the
reproduced data, not a timing distribution.
"""

from __future__ import annotations


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def print_table(title: str, header: str, rows) -> None:
    """Print a small aligned table (captured by pytest unless -s is used)."""
    print(f"\n{title}")
    print(header)
    for row in rows:
        print(row)
