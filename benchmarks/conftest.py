"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series so the output can be compared against the original
(see EXPERIMENTS.md for the side-by-side record).  Heavy computations run
exactly once per benchmark (``rounds=1``) — the interesting output is the
reproduced data, not a timing distribution.

The ``run_store`` fixture gives every benchmark a shared, content-addressed
result store.  By default it is an in-process ``MemoryStore``; export
``REPRO_BENCH_STORE=DIR`` to back it with a ``DiskStore`` so warm re-runs
of the heavy figures (Fig. 8, Fig. 10, Table I) are served from disk and
finish near-instantly.
"""

from __future__ import annotations

import os

import pytest

from repro.core.store import DiskStore, MemoryStore


@pytest.fixture(scope="session")
def run_store():
    """Session-shared RunStore (DiskStore when REPRO_BENCH_STORE is set)."""
    path = os.environ.get("REPRO_BENCH_STORE")
    return DiskStore(path) if path else MemoryStore()


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


def print_table(title: str, header: str, rows) -> None:
    """Print a small aligned table (captured by pytest unless -s is used)."""
    print(f"\n{title}")
    print(header)
    for row in rows:
        print(row)
