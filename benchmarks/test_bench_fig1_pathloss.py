"""Fig. 1 — pathloss vs distance: model, synthetic measurements, fits.

Paper series: computed pathloss n = 2.000 (free space), measured free-space
data, computed pathloss n = 2.0454 (parallel copper boards), measured
copper-board data, and the free-space curves shifted by the horn
(2 x 9.5 dB) and array (2 x 12 dB) gains.
"""

import numpy as np

from conftest import print_table, run_once
from repro.channel import LogDistancePathLossModel, SyntheticVNA
from repro.channel.fitting import fit_from_sweeps, pathloss_samples_from_sweeps

CENTER_FREQUENCY_HZ = 232.5e9
HORN_GAIN_DB = 2 * 9.5
ARRAY_GAIN_DB = 2 * 12.0


def _reproduce_figure():
    vna = SyntheticVNA(n_points=1024, rng=1)
    distances = np.linspace(0.02, 0.2, 12)
    free_sweeps = vna.distance_sweep(distances, "freespace")
    copper_sweeps = [vna.measure_parallel_copper_boards(float(d))
                     for d in np.linspace(0.05, 0.2, 10)]
    free_fit = fit_from_sweeps(free_sweeps, antenna_gain_db=HORN_GAIN_DB)
    copper_fit = fit_from_sweeps(copper_sweeps, antenna_gain_db=HORN_GAIN_DB)
    model = LogDistancePathLossModel.free_space(CENTER_FREQUENCY_HZ)
    grid = np.linspace(0.02, 0.2, 7)
    return {
        "free_fit": free_fit,
        "copper_fit": copper_fit,
        "grid_mm": grid * 1e3,
        "isotropic_db": np.asarray(model.path_loss_db(grid)),
        "with_horn_db": np.asarray(
            model.with_antenna_gain_db(HORN_GAIN_DB).path_loss_db(grid)),
        "with_array_db": np.asarray(
            model.with_antenna_gain_db(ARRAY_GAIN_DB).path_loss_db(grid)),
        "measured_free": pathloss_samples_from_sweeps(free_sweeps,
                                                      HORN_GAIN_DB),
        "measured_copper": pathloss_samples_from_sweeps(copper_sweeps,
                                                        HORN_GAIN_DB),
    }


def test_fig1_pathloss_model_and_fits(benchmark):
    data = run_once(benchmark, _reproduce_figure)
    rows = [
        f"  {d:6.0f} {iso:12.1f} {horn:12.1f} {arr:12.1f}"
        for d, iso, horn, arr in zip(data["grid_mm"], data["isotropic_db"],
                                     data["with_horn_db"],
                                     data["with_array_db"])
    ]
    print_table("Fig. 1 — pathloss vs distance (dB)",
                "  d[mm]   isotropic    +2x9.5dB     +2x12dB", rows)
    print(f"  fitted exponent, free space          : "
          f"{data['free_fit'].exponent:.4f}  (paper: 2.000)")
    print(f"  fitted exponent, parallel copper     : "
          f"{data['copper_fit'].exponent:.4f}  (paper: 2.0454)")
    # Shape assertions: the fitted exponents reproduce the paper's values
    # and the measured points track the computed model.
    assert abs(data["free_fit"].exponent - 2.000) < 0.01
    assert abs(data["copper_fit"].exponent - 2.0454) < 0.03
    distances, losses = data["measured_free"]
    model_losses = data["isotropic_db"]
    assert np.all(np.diff(losses) > 0)
    assert data["free_fit"].rms_error_db < 0.5
    assert data["copper_fit"].rms_error_db < 0.5
    # Antenna gains shift the curve down by exactly the gain.
    np.testing.assert_allclose(data["isotropic_db"] - data["with_horn_db"],
                               HORN_GAIN_DB)
    np.testing.assert_allclose(data["isotropic_db"] - data["with_array_db"],
                               ARRAY_GAIN_DB)
