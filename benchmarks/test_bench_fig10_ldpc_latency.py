"""Fig. 10 — required Eb/N0 vs structural decoding latency.

Paper series: (4,8)-regular LDPC-CC (B0 = [2,2], B1 = B2 = [1,1]) with
lifting factors N = 25, 40, 60 and window sizes W = 3..8, against the
(4,8)-regular LDPC block code, all at a BER target of 1e-5.

Reproduction notes (see EXPERIMENTS.md):

* The whole figure runs through the scenario registry (``fig10``): the
  asymptotic density-evolution placement and the Monte-Carlo
  required-Eb/N0 searches are points of one scenario, each with an
  independently spawned generator, executed by the sweep engine through
  the batched BP decode path.
* The Monte-Carlo points use a reduced BER target of 1e-3 (a
  laptop-feasible substitute for the paper's 1e-5); the *shape* claims —
  LDPC-CC beats the block code at equal latency, larger W helps with
  diminishing returns, larger N helps at fixed W — are asserted on the
  measured data.
"""

from conftest import print_table, run_once
from repro.scenarios import run_scenario

TARGET_BER = 1e-3
DE_WINDOWS = (3, 4, 5, 6, 7, 8)
MC_CONFIGS = (
    # (lifting factor N, window size W)
    (25, 3), (25, 5), (25, 8),
    (40, 3), (40, 5), (40, 8),
)
BLOCK_LIFTING_FACTORS = (100, 200, 400)
MC_SEED = 3
#: Monte-Carlo slack for comparing two measured required-Eb/N0 values: the
#: searches are independent bisections with a 0.25 dB tolerance, so even two
#: identical true thresholds can be reported one grid step
#: (high_db - low_db scaled to the final bracket, here 0.171875 dB) apart.
MC_SLACK_DB = 0.18


def test_fig10_required_ebn0_vs_latency(benchmark, run_store):
    result = run_once(benchmark,
                      lambda: run_scenario("fig10", rng=MC_SEED,
                                           store=run_store))
    de = {window: result.value_where(mode="de", family="ldpc-cc",
                                     window=window)["de_threshold_ebn0_db"]
          for window in DE_WINDOWS}
    block_threshold = result.value_where(
        mode="de", family="ldpc-bc")["de_threshold_ebn0_db"]
    cc = {(lifting, window): result.value_where(
              mode="mc", family="ldpc-cc", lifting_factor=lifting,
              window=window)
          for lifting, window in MC_CONFIGS}
    bc = {lifting: result.value_where(mode="mc", family="ldpc-bc",
                                      lifting_factor=lifting)
          for lifting in BLOCK_LIFTING_FACTORS}

    rows = [
        f"  LDPC-CC N={lifting:3d} W={window}  "
        f"latency {point['structural_latency_info_bits']:6.0f}  "
        f"required {point['required_ebn0_db']:5.2f} dB  "
        f"(DE threshold {point['de_threshold_ebn0_db']:4.2f} dB)"
        for (lifting, window), point in cc.items()
    ] + [
        f"  LDPC-BC N={lifting:3d}      "
        f"latency {point['structural_latency_info_bits']:6.0f}  "
        f"required {point['required_ebn0_db']:5.2f} dB  "
        f"(DE threshold {point['de_threshold_ebn0_db']:4.2f} dB)"
        for lifting, point in bc.items()
    ]
    print_table("Fig. 10 — required Eb/N0 vs structural latency "
                f"(BER target {TARGET_BER:g})",
                "  configuration", rows)

    # (1) Window-decoding thresholds improve with W, with diminishing returns.
    assert de[3] > de[4] > de[5] >= de[6] >= de[7] >= de[8]
    assert (de[3] - de[4]) > (de[7] - de[8])
    # (2) Every coupled threshold beats the block-code threshold.
    assert max(de.values()) < block_threshold
    # (3) Larger W lowers the measured required Eb/N0 at fixed N
    #     (allowing one bisection grid step of Monte-Carlo slack).
    for lifting_factor in (25, 40):
        assert cc[(lifting_factor, 8)]["required_ebn0_db"] <= \
            cc[(lifting_factor, 3)]["required_ebn0_db"] + MC_SLACK_DB
    # (4) Larger N does not hurt at fixed W (finite-length gain).
    assert cc[(40, 5)]["required_ebn0_db"] <= \
        cc[(25, 5)]["required_ebn0_db"] + MC_SLACK_DB
    # (5) The paper's headline: at equal structural latency (200 information
    #     bits) the LDPC-CC needs no more Eb/N0 than the LDPC-BC, and the
    #     block code needs about twice the latency to catch up.
    assert cc[(40, 5)]["structural_latency_info_bits"] == \
        bc[200]["structural_latency_info_bits"] == 200.0
    assert cc[(40, 5)]["required_ebn0_db"] <= \
        bc[200]["required_ebn0_db"] + MC_SLACK_DB
    assert bc[400]["required_ebn0_db"] <= \
        bc[200]["required_ebn0_db"] + MC_SLACK_DB
    # (6) Latencies follow Eqs. (4) and (5).
    assert cc[(25, 3)]["structural_latency_info_bits"] == 75.0
    assert cc[(40, 8)]["structural_latency_info_bits"] == 320.0
    assert bc[400]["structural_latency_info_bits"] == 400.0
