"""Fig. 10 — required Eb/N0 vs structural decoding latency.

Paper series: (4,8)-regular LDPC-CC (B0 = [2,2], B1 = B2 = [1,1]) with
lifting factors N = 25, 40, 60 and window sizes W = 3..8, against the
(4,8)-regular LDPC block code, all at a BER target of 1e-5.

Reproduction notes (see EXPERIMENTS.md):

* The asymptotic placement of every configuration comes from
  window-decoding density evolution (fast and deterministic).
* The finite-length effect of the lifting factor is measured with the
  Monte-Carlo harness at a reduced BER target of 1e-3 (a laptop-feasible
  substitute for the paper's 1e-5); the *shape* claims — LDPC-CC beats the
  block code at equal latency, larger W helps with diminishing returns,
  larger N helps at fixed W — are asserted on the measured data.
* The Monte-Carlo points run through :class:`repro.core.SweepEngine`
  (independent per-configuration seeding) and decode whole codeword
  batches at once via the batched BP path, several times faster than the
  original per-codeword loop.
"""

import math

from conftest import print_table, run_once
from repro.coding import (
    BerSimulator,
    LdpcBlockCode,
    LdpcConvolutionalCode,
    PAPER_BLOCK_PROTOGRAPH,
    WindowDecoder,
    block_code_structural_latency,
    gaussian_de_threshold,
    paper_edge_spreading,
    required_ebn0_db,
    window_de_threshold,
    window_decoder_structural_latency,
)
from repro.core import SweepEngine

RATE = 0.5
TARGET_BER = 1e-3
TERMINATION_LENGTH = 12
DE_WINDOWS = (3, 4, 5, 6, 7, 8)
MC_CONFIGS = (
    # (lifting factor N, window size W)
    (25, 3), (25, 5), (25, 8),
    (40, 3), (40, 5), (40, 8),
)
BLOCK_LIFTING_FACTORS = (100, 200, 400)
MC_SEED = 3
#: Monte-Carlo slack for comparing two measured required-Eb/N0 values: the
#: searches are independent bisections with a 0.25 dB tolerance, so even two
#: identical true thresholds can be reported one grid step
#: (high_db - low_db scaled to the final bracket, here 0.171875 dB) apart.
MC_SLACK_DB = 0.18


def _error_budget(codeword_length: int, n_codewords: int) -> int:
    """Probe stopping budget: 4x the expected errors at the BER target."""
    return math.ceil(4.0 * TARGET_BER * n_codewords * codeword_length)


def _measure_cc(params, rng) -> float:
    code = LdpcConvolutionalCode(paper_edge_spreading(),
                                 params["lifting_factor"],
                                 TERMINATION_LENGTH, rng=0)
    decoder = WindowDecoder(code, window_size=params["window"],
                            max_iterations=40)
    simulator = BerSimulator(code.n, RATE, decoder.decode_bits,
                             decode_batch=decoder.decode_bits_batch,
                             batch_size=8)
    return required_ebn0_db(simulator, TARGET_BER, low_db=0.5, high_db=6.0,
                            tolerance_db=0.25, n_codewords=25, rng=rng,
                            max_bit_errors=_error_budget(code.n, 25))


def _measure_bc(params, rng) -> float:
    code = LdpcBlockCode(PAPER_BLOCK_PROTOGRAPH, params["lifting_factor"],
                         rng=0)
    simulator = BerSimulator(code.n, RATE,
                             lambda llrs: code.decode(llrs).hard_decisions,
                             decode_batch=code.decode_bits_batch,
                             batch_size=16)
    return required_ebn0_db(simulator, TARGET_BER, low_db=0.5, high_db=6.0,
                            tolerance_db=0.25, n_codewords=60, rng=rng,
                            max_bit_errors=_error_budget(code.n, 60))


def _reproduce_figure():
    spreading = paper_edge_spreading()
    de_thresholds = {window: window_de_threshold(spreading, window, rate=RATE)
                     for window in DE_WINDOWS}
    block_threshold = gaussian_de_threshold(PAPER_BLOCK_PROTOGRAPH, rate=RATE)
    engine = SweepEngine()
    cc_measured = engine.sweep_values(
        _measure_cc,
        [{"lifting_factor": n, "window": w} for n, w in MC_CONFIGS],
        rng=MC_SEED)
    cc_points = []
    for (lifting_factor, window), measured in zip(MC_CONFIGS, cc_measured):
        latency = window_decoder_structural_latency(window, lifting_factor, 2,
                                                    RATE)
        cc_points.append({
            "N": lifting_factor,
            "W": window,
            "latency": latency,
            "required_ebn0_db": measured,
            "de_threshold_db": de_thresholds[window],
        })
    bc_measured = engine.sweep_values(
        _measure_bc,
        [{"lifting_factor": n} for n in BLOCK_LIFTING_FACTORS],
        rng=MC_SEED)
    bc_points = []
    for lifting_factor, measured in zip(BLOCK_LIFTING_FACTORS, bc_measured):
        bc_points.append({
            "N": lifting_factor,
            "latency": block_code_structural_latency(lifting_factor, 2, RATE),
            "required_ebn0_db": measured,
            "de_threshold_db": block_threshold,
        })
    return {"cc": cc_points, "bc": bc_points,
            "de_thresholds": de_thresholds,
            "block_threshold": block_threshold}


def test_fig10_required_ebn0_vs_latency(benchmark):
    data = run_once(benchmark, _reproduce_figure)
    rows = [
        f"  LDPC-CC N={p['N']:3d} W={p['W']}  latency {p['latency']:6.0f}  "
        f"required {p['required_ebn0_db']:5.2f} dB  "
        f"(DE threshold {p['de_threshold_db']:4.2f} dB)"
        for p in data["cc"]
    ] + [
        f"  LDPC-BC N={p['N']:3d}      latency {p['latency']:6.0f}  "
        f"required {p['required_ebn0_db']:5.2f} dB  "
        f"(DE threshold {p['de_threshold_db']:4.2f} dB)"
        for p in data["bc"]
    ]
    print_table("Fig. 10 — required Eb/N0 vs structural latency "
                f"(BER target {TARGET_BER:g})",
                "  configuration", rows)

    cc = {(p["N"], p["W"]): p for p in data["cc"]}
    bc = {p["N"]: p for p in data["bc"]}
    de = data["de_thresholds"]

    # (1) Window-decoding thresholds improve with W, with diminishing returns.
    assert de[3] > de[4] > de[5] >= de[6] >= de[7] >= de[8]
    assert (de[3] - de[4]) > (de[7] - de[8])
    # (2) Every coupled threshold beats the block-code threshold.
    assert max(de.values()) < data["block_threshold"]
    # (3) Larger W lowers the measured required Eb/N0 at fixed N
    #     (allowing one bisection grid step of Monte-Carlo slack).
    for lifting_factor in (25, 40):
        assert cc[(lifting_factor, 8)]["required_ebn0_db"] <= \
            cc[(lifting_factor, 3)]["required_ebn0_db"] + MC_SLACK_DB
    # (4) Larger N does not hurt at fixed W (finite-length gain).
    assert cc[(40, 5)]["required_ebn0_db"] <= \
        cc[(25, 5)]["required_ebn0_db"] + MC_SLACK_DB
    # (5) The paper's headline: at equal structural latency (200 information
    #     bits) the LDPC-CC needs no more Eb/N0 than the LDPC-BC, and the
    #     block code needs about twice the latency to catch up.
    assert cc[(40, 5)]["latency"] == bc[200]["latency"] == 200.0
    assert cc[(40, 5)]["required_ebn0_db"] <= \
        bc[200]["required_ebn0_db"] + MC_SLACK_DB
    assert bc[400]["required_ebn0_db"] <= bc[200]["required_ebn0_db"] + MC_SLACK_DB
    # (6) Latencies follow Eqs. (4) and (5).
    assert cc[(25, 3)]["latency"] == 75.0
    assert cc[(40, 8)]["latency"] == 320.0
    assert bc[400]["latency"] == 400.0
