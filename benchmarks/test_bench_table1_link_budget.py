"""Table I — link-budget parameters for board-to-board communications.

Runs through the scenario registry (``table1``): the benchmark only
consumes the structured :class:`~repro.scenarios.ScenarioResult`.
"""

from conftest import print_table, run_once
from repro.scenarios import run_scenario

PAPER_TABLE_I = {
    "rx_noise_figure_db": 10.0,
    "path_loss_exponent": 2.0,
    "path_loss_shortest_link_db": 59.8,
    "path_loss_largest_link_db": 69.3,
    "array_gain_db": 12.0,
    "butler_matrix_inaccuracy_db": 5.0,
    "polarization_mismatch_db": 3.0,
    "implementation_loss_db": 5.0,
    "rx_temperature_k": 323.0,
}


def test_table1_link_budget_parameters(benchmark, run_store):
    result = run_once(benchmark,
                      lambda: run_scenario("table1", rng=0, store=run_store))
    table = result.series("parameter")
    rows = [f"  {key:32s} {table[key]:10.2f} {PAPER_TABLE_I[key]:10.2f}"
            for key in PAPER_TABLE_I]
    print_table("Table I — link budget parameters (reproduced vs paper)",
                "  parameter                          reproduced      paper",
                rows)
    assert set(table) == set(PAPER_TABLE_I)
    for key, paper_value in PAPER_TABLE_I.items():
        assert abs(table[key] - paper_value) <= 0.1, key
