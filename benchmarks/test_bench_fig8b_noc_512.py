"""Fig. 8(b) — scaling to 512 modules: 32x16 2D mesh vs 8x8x8 3D mesh.

Paper observation: the latency gap between the 2D and the 3D mesh grows
significantly compared to the 64-module case, and the 2D mesh saturates at
a much lower injection rate.
"""

import numpy as np

from conftest import print_table, run_once
from repro.noc import AnalyticNocModel, Mesh2D, Mesh3D

INJECTION_RATES = np.array([0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5])


def _reproduce_figure():
    results = {}
    for topology in (Mesh2D(32, 16), Mesh3D(8, 8, 8), Mesh2D(8, 8),
                     Mesh3D(4, 4, 4)):
        model = AnalyticNocModel(topology)
        results[topology.name] = {
            "latency": model.latency_curve(INJECTION_RATES).mean_latency_cycles,
            "zero_load": model.zero_load_latency(),
            "saturation": model.saturation_rate(),
        }
    return results


def test_fig8b_latency_512_modules(benchmark):
    results = run_once(benchmark, _reproduce_figure)
    rows = []
    for index, rate in enumerate(INJECTION_RATES):
        cells = []
        for name in ("32x16 2D mesh", "8x8x8 3D mesh"):
            latency = results[name]["latency"][index]
            cells.append(f"{latency:14.1f}" if np.isfinite(latency)
                         else f"{'saturated':>14s}")
        rows.append(f"  {rate:5.2f}" + "".join(cells))
    print_table("Fig. 8(b) — mean latency [cycles] vs injection rate, 512 modules",
                "  rate    32x16 2D mesh   8x8x8 3D mesh", rows)
    large_2d = results["32x16 2D mesh"]
    large_3d = results["8x8x8 3D mesh"]
    small_2d = results["8x8 2D mesh"]
    small_3d = results["4x4x4 3D mesh"]
    print(f"  zero-load gap at 64 modules : "
          f"{small_2d['zero_load'] - small_3d['zero_load']:.1f} cycles")
    print(f"  zero-load gap at 512 modules: "
          f"{large_2d['zero_load'] - large_3d['zero_load']:.1f} cycles")
    # The gap widens substantially when scaling from 64 to 512 modules.
    gap_small = small_2d["zero_load"] - small_3d["zero_load"]
    gap_large = large_2d["zero_load"] - large_3d["zero_load"]
    assert gap_large > 3.0 * gap_small
    # The 2D mesh saturates very early at 512 modules, the 3D mesh does not.
    assert large_2d["saturation"] < 0.15
    assert large_3d["saturation"] > 0.3
    # At an injection rate of 0.2 the 2D mesh is already saturated while the
    # 3D mesh still operates at low latency (as in Fig. 8b).
    index_02 = INJECTION_RATES.tolist().index(0.2)
    assert not np.isfinite(large_2d["latency"][index_02])
    assert np.isfinite(large_3d["latency"][index_02])
