"""Fig. 8(b) — scaling to 512 modules: 32x16 2D mesh vs 8x8x8 3D mesh.

Paper observation: the latency gap between the 2D and the 3D mesh grows
significantly compared to the 64-module case, and the 2D mesh saturates at
a much lower injection rate.

Runs through the scenario registry (``fig8b``): the benchmark only
consumes the structured result.
"""

import numpy as np

from conftest import print_table, run_once
from repro.scenarios import run_scenario


def test_fig8b_latency_512_modules(benchmark, run_store):
    result = run_once(benchmark,
                      lambda: run_scenario("fig8b", rng=0, store=run_store))
    results = result.series("topology")
    rates = results["32x16 2D mesh"]["injection_rates"]
    rows = []
    for index, rate in enumerate(rates):
        cells = []
        for name in ("32x16 2D mesh", "8x8x8 3D mesh"):
            latency = results[name]["mean_latency_cycles"][index]
            cells.append(f"{latency:14.1f}" if np.isfinite(latency)
                         else f"{'saturated':>14s}")
        rows.append(f"  {rate:5.2f}" + "".join(cells))
    print_table("Fig. 8(b) — mean latency [cycles] vs injection rate, 512 modules",
                "  rate    32x16 2D mesh   8x8x8 3D mesh", rows)
    large_2d = results["32x16 2D mesh"]
    large_3d = results["8x8x8 3D mesh"]
    small_2d = results["8x8 2D mesh"]
    small_3d = results["4x4x4 3D mesh"]
    gap_small = (small_2d["zero_load_latency_cycles"]
                 - small_3d["zero_load_latency_cycles"])
    gap_large = (large_2d["zero_load_latency_cycles"]
                 - large_3d["zero_load_latency_cycles"])
    print(f"  zero-load gap at 64 modules : {gap_small:.1f} cycles")
    print(f"  zero-load gap at 512 modules: {gap_large:.1f} cycles")
    # The gap widens substantially when scaling from 64 to 512 modules.
    assert gap_large > 3.0 * gap_small
    # The 2D mesh saturates very early at 512 modules, the 3D mesh does not.
    assert large_2d["saturation_rate"] < 0.15
    assert large_3d["saturation_rate"] > 0.3
    # At an injection rate of 0.2 the 2D mesh is already saturated while the
    # 3D mesh still operates at low latency (as in Fig. 8b).
    index_02 = list(rates).index(0.2)
    assert not np.isfinite(large_2d["mean_latency_cycles"][index_02])
    assert np.isfinite(large_3d["mean_latency_cycles"][index_02])
