"""Fig. 8 (simulator variant) — the vectorized cycle engine on the
64-module topologies, plus its speedup over the deque reference.

The analytic benchmarks (``test_bench_fig8a_noc_64`` /
``test_bench_fig8b_noc_512``) reproduce the paper's curves from the
queueing model; this file regenerates the Fig. 8(a) operating points with
the vectorized :class:`repro.noc.NocSimulator` — an independent
cycle-accurate check of the same claims (latency ordering star < 3D < 2D
at low load, saturation ordering star < 2D < 3D) — and records the
engine's headline performance property: **at 64 modules the vectorized
simulator is at least 5x faster than the deque reference** it was
validated against.
"""

import time

import numpy as np

from conftest import print_table, run_once
from repro.core import SweepEngine
from repro.noc import (
    AnalyticNocModel,
    Mesh2D,
    Mesh3D,
    NocSimulator,
    ReferenceNocSimulator,
    StarMesh,
)

RATES = (0.05, 0.1, 0.15, 0.3)
SEED = 0
N_CYCLES = 3_000
WARMUP = 750

TOPOLOGIES = (
    ("8x8 2D mesh", lambda: Mesh2D(8, 8)),
    ("4x4x4 star-mesh", lambda: StarMesh(4, 4, concentration=4)),
    ("4x4x4 3D mesh", lambda: Mesh3D(4, 4, 4)),
)


def _reproduce_curves():
    engine = SweepEngine()
    curves = {}
    for name, factory in TOPOLOGIES:
        topology = factory()
        simulator = NocSimulator(topology)
        simulated = simulator.latency_sweep(RATES, n_cycles=N_CYCLES,
                                            warmup_cycles=WARMUP, rng=SEED,
                                            engine=engine)
        analytic = AnalyticNocModel(topology)
        curves[name] = {
            "simulated": [point.mean_latency_cycles for point in simulated],
            "saturated": [point.saturated for point in simulated],
            "analytic": [analytic.mean_latency(rate) for rate in RATES],
        }
    return curves


def test_fig8a_vectorized_simulator_curves(benchmark):
    curves = run_once(benchmark, _reproduce_curves)
    rows = []
    for index, rate in enumerate(RATES):
        cells = []
        for name, _ in TOPOLOGIES:
            latency = curves[name]["simulated"][index]
            cells.append(f"{latency:12.1f}" if np.isfinite(latency)
                         else f"{'sat':>12s}")
        rows.append(f"  {rate:5.2f}" + "".join(cells))
    print_table("Fig. 8(a) variant — vectorized-simulator latency [cycles]",
                "  rate      2D mesh    star-mesh      3D mesh", rows)
    # Low-load latencies agree with the calibrated analytic model.
    for name, _ in TOPOLOGIES:
        simulated = curves[name]["simulated"][0]
        analytic = curves[name]["analytic"][0]
        assert abs(simulated - analytic) < max(0.25 * analytic, 3.0), name
    # Fig. 8(a) latency ordering at low load: star < 3D < 2D.
    low = {name: curves[name]["simulated"][0] for name, _ in TOPOLOGIES}
    assert low["4x4x4 star-mesh"] < low["4x4x4 3D mesh"] < low["8x8 2D mesh"]
    # At 0.3 flits/cycle/module the star-mesh is past its ~0.19 saturation
    # point while the 3D mesh (~0.75) still runs freely.
    assert curves["4x4x4 star-mesh"]["saturated"][-1]
    assert not curves["4x4x4 3D mesh"]["saturated"][-1]


def _time_simulator(simulator, rate, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        simulator.run(rate, n_cycles=1_500, warmup_cycles=300, rng=SEED)
        best = min(best, time.perf_counter() - start)
    return best


def _measure_speedup():
    topology = Mesh2D(8, 8)  # the paper's 64-module reference
    rate = 0.3
    reference_s = _time_simulator(ReferenceNocSimulator(topology), rate)
    vectorized_s = _time_simulator(NocSimulator(topology), rate)
    return {"reference_s": reference_s, "vectorized_s": vectorized_s,
            "speedup": reference_s / vectorized_s}


def test_vectorized_simulator_speedup_at_64_modules(benchmark):
    result = run_once(benchmark, _measure_speedup)
    print_table(
        "Vectorized simulator vs deque reference (8x8 mesh, 0.3 flits/cycle)",
        "  engine        best-of-2 [s]",
        [f"  reference     {result['reference_s']:12.3f}",
         f"  vectorized    {result['vectorized_s']:12.3f}",
         f"  speedup       {result['speedup']:11.1f}x"])
    assert result["speedup"] >= 5.0, result
