"""Fig. 8(a) — mean packet latency vs injection rate, 64 modules.

Paper series: 8x8 2D mesh, 4x4x4 star-mesh and 4x4x4 3D mesh under uniform
Poisson traffic; zero-load latencies about 13 / 7 / 10 cycles and
saturation throughputs about 0.41 / 0.19 / 0.75 flits/cycle/module.

Runs through the scenario registry (``fig8a``): topology variants, router
calibration and injection-rate grid are declared in the scenario, the
benchmark only consumes the structured result.
"""

import numpy as np

from conftest import print_table, run_once
from repro.scenarios import run_scenario

PAPER_VALUES = {
    "8x8 2D mesh": {"zero_load": 13.0, "saturation": 0.41},
    "4x4x4 star-mesh": {"zero_load": 7.0, "saturation": 0.19},
    "4x4x4 3D mesh": {"zero_load": 10.0, "saturation": 0.75},
}


def test_fig8a_latency_64_modules(benchmark, run_store):
    result = run_once(benchmark,
                      lambda: run_scenario("fig8a", rng=0, store=run_store))
    results = result.series("topology")
    rates = results["8x8 2D mesh"]["injection_rates"]
    rows = []
    for index, rate in enumerate(rates):
        cells = []
        for name in PAPER_VALUES:
            latency = results[name]["mean_latency_cycles"][index]
            cells.append(f"{latency:12.1f}" if np.isfinite(latency)
                         else f"{'sat':>12s}")
        rows.append(f"  {rate:5.2f}" + "".join(cells))
    print_table("Fig. 8(a) — mean latency [cycles] vs injection rate, 64 modules",
                "  rate      2D mesh    star-mesh      3D mesh", rows)
    for name, paper in PAPER_VALUES.items():
        reproduced = results[name]
        print(f"  {name:18s} zero-load "
              f"{reproduced['zero_load_latency_cycles']:5.1f} "
              f"(paper {paper['zero_load']:4.1f}), saturation "
              f"{reproduced['saturation_rate']:5.2f} "
              f"(paper {paper['saturation']:4.2f})")
    # Zero-load latencies land within one cycle of the paper.
    for name, paper in PAPER_VALUES.items():
        assert abs(results[name]["zero_load_latency_cycles"]
                   - paper["zero_load"]) <= 1.0, name
    # Saturation ordering and rough values: star < 2D < 3D.
    star = results["4x4x4 star-mesh"]["saturation_rate"]
    mesh2d = results["8x8 2D mesh"]["saturation_rate"]
    mesh3d = results["4x4x4 3D mesh"]["saturation_rate"]
    assert star < mesh2d < mesh3d
    assert abs(mesh2d - 0.41) <= 0.05
    assert abs(star - 0.19) <= 0.04
    assert abs(mesh3d - 0.75) <= 0.12
    # Latency ordering at low traffic: star < 3D < 2D (Fig. 8a).
    low = 0
    assert results["4x4x4 star-mesh"]["mean_latency_cycles"][low] < \
        results["4x4x4 3D mesh"]["mean_latency_cycles"][low] < \
        results["8x8 2D mesh"]["mean_latency_cycles"][low]
