"""Fig. 3 — impulse response of the 150 mm diagonal link.

Same analysis as Fig. 2 for the longer, rotated (diagonal) link: the LoS
delay moves to ~0.5 ns and the reflections remain at least 15 dB down.
"""

from conftest import print_table, run_once
from repro.channel import (
    SyntheticVNA,
    reflection_margin_db,
    sweep_to_impulse_response,
)
from repro.utils.constants import SPEED_OF_LIGHT_M_PER_S

DISTANCE_M = 0.15


def _reproduce_figure():
    vna = SyntheticVNA(rng=2)
    free = sweep_to_impulse_response(vna.measure_freespace(DISTANCE_M))
    copper = sweep_to_impulse_response(
        vna.measure_parallel_copper_boards(DISTANCE_M))
    return {
        "free": free,
        "copper": copper,
        "free_margin": reflection_margin_db(free),
        "copper_margin": reflection_margin_db(copper),
        "copper_peaks": copper.peaks(threshold_below_los_db=25.0),
    }


def test_fig3_impulse_response_150mm_diagonal(benchmark):
    data = run_once(benchmark, _reproduce_figure)
    rows = [f"  {delay*1e9:8.3f} {level:10.1f}"
            for delay, level in data["copper_peaks"]]
    print_table("Fig. 3 — impulse-response peaks, 150 mm diagonal link",
                "  delay[ns]  level[dB]", rows)
    print(f"  LoS delay                   : "
          f"{data['copper'].los_delay_s*1e9:.3f} ns (expected ~0.50 ns)")
    print(f"  reflection margin, freespace: {data['free_margin']:.1f} dB")
    print(f"  reflection margin, copper   : {data['copper_margin']:.1f} dB"
          "  (paper: >= 15 dB)")
    expected_delay = DISTANCE_M / SPEED_OF_LIGHT_M_PER_S
    assert abs(data["copper"].los_delay_s - expected_delay) < 3e-11
    assert data["copper_margin"] >= 14.0
    assert data["free_margin"] > data["copper_margin"]
    # The longer link is weaker than the 50 mm link of Fig. 2 (higher loss),
    # so its LoS level is lower; verified indirectly through the delay.
    assert data["copper"].los_delay_s > 0.4e-9
