"""Backend seam — ≥5x large-batch throughput gate vs the pre-seam kernels.

The three hot kernels (batched BP decode, batched trellis demod, NoC
cycle engine) now run behind the :mod:`repro.backend` seam with tiling,
float32 message paths and fused in-place updates.  This benchmark pins
the pre-seam kernels as frozen in-file baselines (the exact algorithms
shipped before the seam landed: float64 ``np.add.reduceat`` BP,
``np.where``-sum observation probabilities + gather-indexed BCJR,
one-replication-at-a-time NoC runs) and gates the **suite-level**
speedup at ≥5x: total pre-seam wall time over total seam wall time on
the large-batch workloads below.  Per-kernel floors guard each kernel
against regressing individually (BP and the NoC engine each clear 5x on
their own; the bandwidth-bound BCJR recursion contributes ~2x, carried
by its 27x observation-table win).

Correctness rides along: the float32 BP path must agree with the exact
float64 decoder on ≥99% of bits, the seam demod must pick the same
symbols as the pre-seam demod, and the merged NoC engine must reproduce
the sequential per-replication results *exactly*.
"""

import time

import numpy as np
from scipy import sparse

from conftest import print_table, run_once
from repro.coding.bp import BeliefPropagationDecoder
from repro.coding.codes import LdpcConvolutionalCode
from repro.coding.protograph import paper_edge_spreading
from repro.noc.simulator import NocSimulator
from repro.noc.topology import Mesh3D
from repro.phy.channel_model import OversampledOneBitChannel
from repro.phy.modulation import AskConstellation
from repro.phy.pulse import sequence_optimized_pulse
from repro.phy.trellis import TrellisKernel
from repro.utils.rng import ensure_rng, spawn_generators

SUITE_FLOOR = 5.0
#: Per-kernel regression canaries (generous margins for noisy runners;
#: measured on the reference container: BP 7.5x, trellis 2.0x, NoC 5.8x).
KERNEL_FLOORS = {"bp_decode": 4.0, "trellis_demod": 1.3, "noc_cycle": 3.5}

_LLR_CLIP = 30.0
_TANH_FLOOR = 1e-300


def _best_of(function, repeats=2):
    """Best-of-``repeats`` wall time (one untimed warmup first)."""
    function()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# frozen pre-seam baselines
# ----------------------------------------------------------------------
class _PreseamBpDecoder:
    """The pre-seam batched BP kernel, frozen verbatim.

    Float64 throughout, per-check segment sums via ``np.add.reduceat``,
    per-variable sums via one flattened ``np.bincount``, per-codeword
    early termination by compaction — the exact algorithm the seam
    replaced (scalar/compat paths omitted; this workload never converges
    so the compaction branch stays cold either way).
    """

    def __init__(self, parity_check, max_iterations):
        matrix = sparse.csr_matrix(parity_check).astype(np.int8)
        self.parity_check = matrix
        self.max_iterations = int(max_iterations)
        self.n_checks, self.n_variables = matrix.shape
        coo = matrix.tocoo()
        order = np.lexsort((coo.col, coo.row))
        self._edge_check = coo.row[order].astype(np.int64)
        self._edge_variable = coo.col[order].astype(np.int64)
        self.n_edges = self._edge_check.size
        self._check_ptr = np.searchsorted(self._edge_check,
                                          np.arange(self.n_checks + 1))

    def _batch_variable_sums(self, check_messages):
        rows = check_messages.shape[0]
        offsets = np.arange(rows, dtype=np.int64)[:, None] * self.n_variables
        bins = (offsets + self._edge_variable[None, :]).ravel()
        sums = np.bincount(bins, weights=check_messages.ravel(),
                           minlength=rows * self.n_variables)
        return sums.reshape(rows, self.n_variables)

    def decode_batch(self, channel_llrs):
        channel_llrs = np.clip(np.asarray(channel_llrs, dtype=float),
                               -_LLR_CLIP, _LLR_CLIP)
        batch_size = channel_llrs.shape[0]
        posterior_out = channel_llrs.copy()
        active = np.arange(batch_size)
        active_llrs = channel_llrs
        check_messages = np.zeros((batch_size, self.n_edges))
        segments = self._check_ptr[:-1]
        for iteration in range(1, self.max_iterations + 1):
            sums = self._batch_variable_sums(check_messages)
            variable_messages = (active_llrs + sums)[:, self._edge_variable] \
                - check_messages
            variable_messages = np.clip(variable_messages,
                                        -_LLR_CLIP, _LLR_CLIP)
            tanh_half = np.tanh(variable_messages / 2.0)
            signs = np.where(tanh_half < 0.0, -1.0, 1.0)
            magnitudes = np.maximum(np.abs(tanh_half), _TANH_FLOOR)
            log_magnitudes = np.log(magnitudes)
            negative = (signs < 0.0).astype(np.int64)
            neg_counts = np.add.reduceat(negative, segments, axis=1)
            log_sums = np.add.reduceat(log_magnitudes, segments, axis=1)
            total_neg_on_edges = neg_counts[:, self._edge_check]
            total_log_on_edges = log_sums[:, self._edge_check]
            excl_neg = total_neg_on_edges - negative
            excl_log = total_log_on_edges - log_magnitudes
            excl_sign = np.where(excl_neg % 2 == 1, -1.0, 1.0)
            excl_magnitude = np.exp(np.minimum(excl_log, 0.0))
            excl_magnitude = np.clip(excl_magnitude, 0.0, 1.0 - 1e-15)
            check_messages = 2.0 * np.arctanh(excl_sign * excl_magnitude)
            check_messages = np.clip(check_messages, -_LLR_CLIP, _LLR_CLIP)
            sums = self._batch_variable_sums(check_messages)
            posterior = active_llrs + sums
            hard = (posterior < 0.0).astype(np.int8)
            syndromes = self.parity_check.dot(hard.T) % 2
            satisfied = ~np.any(syndromes, axis=0)
            finished = satisfied | (iteration == self.max_iterations)
            if np.any(finished):
                posterior_out[active[finished]] = posterior[finished]
                keep = ~finished
                active = active[keep]
                if active.size == 0:
                    break
                active_llrs = active_llrs[keep]
                check_messages = check_messages[keep]
        return (posterior_out < 0.0).astype(np.int8)


def _preseam_log_observations(channel, signs):
    """Pre-seam observation metrics: broadcast ``np.where`` + sample sum."""
    positive = (signs > 0)
    log_p = np.log(channel.transition_prob_plus)
    log_q = np.log1p(-channel.transition_prob_plus)
    chosen = np.where(positive[..., None, None, :], log_p, log_q)
    return chosen.sum(axis=-1)


class _PreseamBcjr:
    """The pre-seam max-log BCJR: float64 predecessor/successor gathers."""

    def __init__(self, channel):
        self.channel = channel
        order, n_states = channel.order, channel.n_states
        self._successors = np.array(
            [[channel.next_state(state, inp) for inp in range(order)]
             for state in range(n_states)], dtype=np.int64)
        pairs = np.argsort(self._successors.reshape(-1),
                           kind="stable").reshape(n_states, order)
        self._pred_state = pairs // order
        self._pred_input = (pairs % order)[:, 0].copy()

    def symbol_log_posteriors(self, log_obs):
        log_obs = np.asarray(log_obs, dtype=float)
        n_rows, n_symbols = log_obs.shape[:2]
        order, n_states = self.channel.order, self.channel.n_states
        pred_state, successors = self._pred_state, self._successors
        obs_pred = log_obs[:, :, pred_state, self._pred_input[:, None]]
        alphas = np.empty((n_symbols + 1, n_rows, n_states))
        alphas[0] = np.full((n_rows, n_states), -np.inf)
        alphas[0, :, 0] = 0.0
        for k in range(n_symbols):
            candidate = alphas[k][:, pred_state]
            candidate += obs_pred[:, k]
            alphas[k + 1] = candidate.max(axis=2)
        beta = np.zeros((n_rows, n_states))
        app = np.empty((n_rows, n_symbols, order))
        for k in range(n_symbols - 1, -1, -1):
            combined = log_obs[:, k] + beta[:, successors]
            app[:, k] = (alphas[k][:, :, None] + combined).max(axis=1)
            beta = combined.max(axis=2)
        app -= app.max(axis=-1, keepdims=True)
        return app


# ----------------------------------------------------------------------
# workload measurements
# ----------------------------------------------------------------------
def _measure_bp():
    iterations = 10
    code = LdpcConvolutionalCode(paper_edge_spreading(), lifting_factor=60,
                                 termination_length=16, rng=0)
    rng = np.random.default_rng(5)
    sigma = 1.6  # noisy: every codeword runs the full iteration budget
    llrs = 2.0 * (1.0 + rng.normal(0.0, sigma, size=(256, code.n))) \
        / sigma ** 2
    baseline = _PreseamBpDecoder(code.parity_check, iterations)
    fast = BeliefPropagationDecoder(code.parity_check,
                                    max_iterations=iterations,
                                    dtype="float32")
    exact = BeliefPropagationDecoder(code.parity_check,
                                     max_iterations=iterations)
    baseline_s = _best_of(lambda: baseline.decode_batch(llrs))
    fast_s = _best_of(lambda: fast.decode_batch(llrs))
    agreement = float(
        (fast.decode_batch(llrs).hard_decisions
         == exact.decode_batch(llrs).hard_decisions).mean())
    return {"kernel": "bp_decode", "baseline_s": baseline_s,
            "fast_s": fast_s, "agreement": agreement}


def _measure_trellis():
    channel = OversampledOneBitChannel(sequence_optimized_pulse(),
                                       AskConstellation(4), snr_db=15.0)
    rng = np.random.default_rng(1)
    signs = np.where(rng.random((512, 192, channel.oversampling)) < 0.5,
                     -1, 1).astype(np.int8)
    baseline_bcjr = _PreseamBcjr(channel)
    fast_kernel = TrellisKernel(channel, dtype="float32")

    def baseline():
        log_obs = _preseam_log_observations(channel, signs)
        return baseline_bcjr.symbol_log_posteriors(log_obs)

    def fast():
        log_obs = channel.log_observation_probabilities(signs)
        return fast_kernel.symbol_log_posteriors(log_obs,
                                                 initial="zero-state")

    baseline_s = _best_of(baseline)
    fast_s = _best_of(fast)
    agreement = float((np.argmax(baseline(), axis=-1)
                       == np.argmax(fast(), axis=-1)).mean())
    return {"kernel": "trellis_demod", "baseline_s": baseline_s,
            "fast_s": fast_s, "agreement": agreement}


def _measure_noc():
    simulator = NocSimulator(Mesh3D(4, 4, 4))
    rate, n_cycles, warmup, n_reps = 0.05, 2500, 500, 16

    def baseline():
        # One replication at a time — the pre-seam engine's only mode
        # (identical per-replication cost; the merged engine's win is
        # amortizing the cycle loop across replications).
        generators = spawn_generators(ensure_rng(7), n_reps)
        return [simulator.run(rate, n_cycles=n_cycles,
                              warmup_cycles=warmup, rng=generator)
                for generator in generators]

    def fast():
        return simulator.run_batch(rate, n_cycles=n_cycles,
                                   warmup_cycles=warmup,
                                   n_replications=n_reps, rng=7)

    baseline_s = _best_of(baseline)
    fast_s = _best_of(fast)
    agreement = 1.0 if baseline() == fast() else 0.0
    return {"kernel": "noc_cycle", "baseline_s": baseline_s,
            "fast_s": fast_s, "agreement": agreement}


def _reproduce():
    return [_measure_bp(), _measure_trellis(), _measure_noc()]


def test_backend_kernels_five_x_floor(benchmark):
    results = run_once(benchmark, _reproduce)
    rows = []
    for entry in results:
        entry["speedup"] = entry["baseline_s"] / entry["fast_s"]
        rows.append(f"  {entry['kernel']:<14} {entry['baseline_s']*1e3:10.0f} "
                    f"{entry['fast_s']*1e3:9.0f} {entry['speedup']:8.1f}x "
                    f"{entry['agreement']:10.4f}")
    total_baseline = sum(entry["baseline_s"] for entry in results)
    total_fast = sum(entry["fast_s"] for entry in results)
    suite = total_baseline / total_fast
    rows.append(f"  {'suite':<14} {total_baseline*1e3:10.0f} "
                f"{total_fast*1e3:9.0f} {suite:8.1f}x")
    print_table("Backend seam — pre-seam vs seam kernels (large batch)",
                "  kernel          pre [ms]  new [ms]  speedup  agreement",
                rows)
    # Correctness floors: the speed is worthless if the answers moved.
    for entry in results:
        if entry["kernel"] == "noc_cycle":
            assert entry["agreement"] == 1.0, \
                "merged NoC engine must reproduce sequential runs exactly"
        else:
            assert entry["agreement"] >= 0.99, \
                f"{entry['kernel']}: float32 path disagrees with float64"
    # The headline gate: ≥5x suite-level throughput, CPU-side.
    assert suite >= SUITE_FLOOR, (
        f"suite speedup {suite:.2f}x under the {SUITE_FLOOR:.0f}x floor "
        f"({[(e['kernel'], round(e['speedup'], 2)) for e in results]})")
    for entry in results:
        floor = KERNEL_FLOORS[entry["kernel"]]
        assert entry["speedup"] >= floor, (
            f"{entry['kernel']} regressed: {entry['speedup']:.2f}x "
            f"< {floor}x floor")
