"""Fig. 2 — impulse response at 50 mm: free space vs parallel copper boards.

Paper observation: the line-of-sight path dominates and every reflection
(antenna ports, horns, copper boards) stays at least 15 dB below it.
"""

import numpy as np

from conftest import print_table, run_once
from repro.channel import (
    SyntheticVNA,
    reflection_margin_db,
    sweep_to_impulse_response,
)

DISTANCE_M = 0.05


def _reproduce_figure():
    vna = SyntheticVNA(rng=1)
    free = sweep_to_impulse_response(vna.measure_freespace(DISTANCE_M))
    copper = sweep_to_impulse_response(
        vna.measure_parallel_copper_boards(DISTANCE_M))
    return {
        "free": free,
        "copper": copper,
        "free_margin": reflection_margin_db(free),
        "copper_margin": reflection_margin_db(copper),
        "copper_peaks": copper.peaks(threshold_below_los_db=25.0),
    }


def test_fig2_impulse_response_50mm(benchmark):
    data = run_once(benchmark, _reproduce_figure)
    rows = [f"  {delay*1e9:8.3f} {level:10.1f}"
            for delay, level in data["copper_peaks"]]
    print_table("Fig. 2 — impulse-response peaks, 50 mm, parallel copper boards",
                "  delay[ns]  level[dB]", rows)
    print(f"  LoS delay (free space)      : {data['free'].los_delay_s*1e9:.3f} ns"
          "  (expected ~0.167 ns)")
    print(f"  reflection margin, freespace: {data['free_margin']:.1f} dB")
    print(f"  reflection margin, copper   : {data['copper_margin']:.1f} dB"
          "  (paper: >= 15 dB)")
    # LoS delay equals distance / c.
    assert abs(data["free"].los_delay_s - DISTANCE_M / 2.998e8) < 2e-11
    # The paper's 15 dB margin holds; copper boards reduce the margin.
    assert data["copper_margin"] >= 14.0
    assert data["free_margin"] > data["copper_margin"]
    # The copper-board echo is visible as an extra peak.
    assert len(data["copper_peaks"]) >= 2
