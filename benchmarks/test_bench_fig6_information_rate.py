"""Fig. 6 — information rates of 4-ASK with 1-bit oversampling receivers.

Paper series (SNR -5 ... 35 dB): max information rate 1-bit oversampled
(sequence detection), the same restricted to symbol-wise detection, the
rectangular pulse with 1-bit oversampling, 1-bit without oversampling, the
unquantised reference and the proposed suboptimal design.
"""

import numpy as np

from conftest import print_table, run_once
from repro.phy import (
    ask_awgn_information_rate,
    one_bit_no_oversampling_rate,
    rectangular_pulse,
    sequence_information_rate,
    sequence_optimized_pulse,
    suboptimal_unique_detection_pulse,
    symbolwise_information_rate,
    symbolwise_optimized_pulse,
)

SNRS_DB = np.array([-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0])
N_SYMBOLS = 8_000


def _reproduce_figure():
    candidate_pulses = (rectangular_pulse(5), sequence_optimized_pulse(),
                        suboptimal_unique_detection_pulse())
    curves = {label: [] for label in
              ("max_sequence", "max_symbolwise", "rect_oversampled",
               "one_bit_no_os", "no_quantization", "suboptimal")}
    for snr in SNRS_DB:
        # "Max information rate" = best available design at this SNR, which
        # is how the per-SNR-optimised curve of the paper is emulated.
        curves["max_sequence"].append(max(
            sequence_information_rate(pulse, snr, n_symbols=N_SYMBOLS, rng=0)
            for pulse in candidate_pulses))
        curves["max_symbolwise"].append(max(
            symbolwise_information_rate(pulse, snr)
            for pulse in (rectangular_pulse(5), symbolwise_optimized_pulse())))
        curves["rect_oversampled"].append(
            symbolwise_information_rate(rectangular_pulse(5), snr))
        curves["one_bit_no_os"].append(one_bit_no_oversampling_rate(snr))
        curves["no_quantization"].append(ask_awgn_information_rate(snr))
        curves["suboptimal"].append(sequence_information_rate(
            suboptimal_unique_detection_pulse(), snr, n_symbols=N_SYMBOLS,
            rng=0))
    return {label: np.asarray(values) for label, values in curves.items()}


def test_fig6_information_rates(benchmark):
    curves = run_once(benchmark, _reproduce_figure)
    rows = []
    for index, snr in enumerate(SNRS_DB):
        rows.append(
            f"  {snr:5.0f} {curves['no_quantization'][index]:9.3f} "
            f"{curves['max_sequence'][index]:9.3f} "
            f"{curves['suboptimal'][index]:9.3f} "
            f"{curves['max_symbolwise'][index]:9.3f} "
            f"{curves['rect_oversampled'][index]:9.3f} "
            f"{curves['one_bit_no_os'][index]:9.3f}")
    print_table("Fig. 6 — information rate [bpcu] vs SNR",
                "  SNR     noQuant   maxSeq    subopt   maxSymb  rect-OS  "
                "1bit-noOS", rows)
    high_snr = slice(-3, None)
    # The unquantised curve upper-bounds every 1-bit scheme and reaches 2.
    for label in ("max_sequence", "max_symbolwise", "rect_oversampled",
                  "one_bit_no_os", "suboptimal"):
        assert np.all(curves[label] <= curves["no_quantization"] + 0.05), label
    assert curves["no_quantization"][-1] > 1.99
    # 1-bit without oversampling and the rectangular pulse saturate at 1 bpcu.
    assert abs(curves["one_bit_no_os"][-1] - 1.0) < 0.02
    assert abs(curves["rect_oversampled"][-1] - 1.0) < 0.02
    # Oversampling with the rectangular pulse beats no oversampling at
    # moderate SNR (the paper's first observation).
    mid = SNRS_DB.tolist().index(10.0)
    assert curves["rect_oversampled"][mid] > curves["one_bit_no_os"][mid] + 0.2
    # Designed ISI + sequence estimation recovers almost the full 2 bpcu.
    assert curves["max_sequence"][-1] > 1.95
    assert curves["suboptimal"][-1] > 1.9
    # Sequence detection beats symbol-wise detection, which beats rect.
    assert np.all(curves["max_sequence"][high_snr] >=
                  curves["max_symbolwise"][high_snr] - 0.02)
    assert curves["max_symbolwise"][-1] > curves["rect_oversampled"][-1] + 0.3
    # The reference curves and the sequence-detection curves increase with
    # SNR.  The rectangular-pulse curve is deliberately excluded: like in
    # the paper it peaks above 1 bpcu at moderate SNR (noise acts as a
    # useful dither) and falls back to 1 bpcu at high SNR; the symbol-wise
    # curve targets the 25 dB design point and rolls off beyond it.
    for label in ("no_quantization", "one_bit_no_os", "max_sequence",
                  "suboptimal"):
        assert np.all(np.diff(curves[label]) > -0.05), label
    assert np.all(np.diff(curves["max_symbolwise"][:7]) > -0.05)
    peak_rect = float(np.max(curves["rect_oversampled"]))
    assert peak_rect > 1.2
    assert peak_rect > curves["rect_oversampled"][-1] + 0.2
