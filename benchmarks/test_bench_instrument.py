"""Instrument acquisition pipeline — measured dataset to coded BER.

Off-paper benchmark for the acquisition subsystem: drive the simulated
VNA through the Instrument seam over the paper's two environments,
record content-addressed datasets, and replay the copper-board dataset
through the MeasuredChannelFrontend to a short coded-BER sweep next to
its ideal BPSK baseline.
"""

import os

import numpy as np

from conftest import print_table, run_once
from repro.channel.fitting import fit_from_sweeps
from repro.instrument import AcquisitionPlan, SimulatedVna, acquire_dataset
from repro.scenarios import run_scenario

HORN_GAIN_DB = 2 * 9.5

FAST = {"coding.lifting_factor": 13, "coding.termination_length": 6,
        "precision.max_codewords": 8, "precision.min_codewords": 2,
        "precision.rel_ci_target": 0.9, "precision.min_errors": 2}


def _reproduce(run_store, datasets_dir):
    datasets = {}
    for environment in ("freespace", "parallel copper boards"):
        plan = AcquisitionPlan(
            distances_m=tuple(np.linspace(0.05, 0.2, 8)),
            seed=20130318, environment=environment, n_points=192)
        with SimulatedVna(seed=plan.seed) as vna:
            dataset = acquire_dataset(vna, plan)
        dataset.store(run_store)
        dataset.save(os.path.join(datasets_dir,
                                  dataset.content_key + ".json"))
        datasets[environment] = dataset
    fits = {env: fit_from_sweeps(ds.sweeps, antenna_gain_db=HORN_GAIN_DB)
            for env, ds in datasets.items()}
    copper_path = os.path.join(
        datasets_dir, datasets["parallel copper boards"].content_key
        + ".json")
    result = run_scenario(
        "measured-channel-coded-ber-sweep", rng=0, store=run_store,
        overrides=dict(FAST, **{"channel.dataset": copper_path}))
    return {"datasets": datasets, "fits": fits, "result": result}


def test_instrument_acquisition_to_coded_ber(benchmark, run_store, tmp_path):
    data = run_once(benchmark,
                    lambda: _reproduce(run_store, str(tmp_path)))

    rows = []
    for environment, dataset in data["datasets"].items():
        fit = data["fits"][environment]
        rows.append(f"  {environment:<26s} {len(dataset.sweeps):3d}      "
                    f"{fit.exponent:.4f}   {dataset.content_key[:12]}…")
    print_table("Instrument acquisition campaign (seed 20130318)",
                "  environment                sweeps   exponent  content key",
                rows)
    curves = {}
    for point in data["result"].points:
        curves.setdefault(point["params"]["frontend"], []).append(
            (point["params"]["ebn0_db"],
             point["value"]["bit_error_rate"]))
    for frontend, curve in sorted(curves.items()):
        series = "  ".join(f"{e:5.1f} dB: {ber:.3g}"
                           for e, ber in sorted(curve))
        print(f"  {frontend:<12s} {series}")

    # The acquired datasets reproduce Fig. 1's fitted exponents, and the
    # measured coded-BER curve sits at or above the ideal baseline.
    assert abs(data["fits"]["freespace"].exponent - 2.0) < 0.01
    assert abs(data["fits"]["parallel copper boards"].exponent
               - 2.0454) < 0.05
    bpsk = dict(curves["bpsk-awgn"])
    measured = dict(curves["measured"])
    assert all(measured[e] >= bpsk[e] for e in bpsk)
