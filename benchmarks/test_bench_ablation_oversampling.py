"""Ablation — how does the information rate scale with the oversampling factor?

The paper fixes 5-fold oversampling as "the smallest sampling rate enabling
unique detection" of 4-ASK.  This ablation sweeps the oversampling factor
for the rectangular pulse and for ramp-style ISI pulses, confirming that
the gain over symbol-rate sampling grows with the factor but flattens, and
that 4-5x is where ISI designs start reaching the full 2 bpcu.
"""

import numpy as np

from conftest import print_table, run_once
from repro.phy import (
    ramp_pulse,
    rectangular_pulse,
    sequence_information_rate,
    symbolwise_information_rate,
)

SNR_DB = 25.0
FACTORS = (1, 2, 3, 5, 8)


def _reproduce():
    results = []
    for factor in FACTORS:
        rect_rate = symbolwise_information_rate(rectangular_pulse(factor),
                                                SNR_DB)
        isi_rate = sequence_information_rate(ramp_pulse(factor, 2), SNR_DB,
                                             n_symbols=6_000, rng=0)
        results.append({"factor": factor, "rect": rect_rate, "isi": isi_rate})
    return results


def test_ablation_oversampling_factor(benchmark):
    results = run_once(benchmark, _reproduce)
    rows = [f"  {r['factor']:6d} {r['rect']:10.3f} {r['isi']:12.3f}"
            for r in results]
    print_table(f"Ablation — information rate vs oversampling factor "
                f"(4-ASK, {SNR_DB:.0f} dB)",
                "  factor   rect [bpcu]  ramp ISI [bpcu]", rows)
    rect = {r["factor"]: r["rect"] for r in results}
    isi = {r["factor"]: r["isi"] for r in results}
    # Symbol-rate sampling is stuck at 1 bpcu; oversampling with ISI breaks
    # through it.
    assert rect[1] <= 1.01
    assert isi[5] > 1.3
    assert isi[5] > isi[1] + 0.3
    # Returns flatten: going from 5x to 8x buys much less than 1x to 5x.
    assert (isi[8] - isi[5]) < 0.5 * (isi[5] - isi[1])
