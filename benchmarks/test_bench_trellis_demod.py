"""Vectorized trellis demodulator vs the per-(state, input) Python loop.

The waveform-frontend refactor replaced the Viterbi detector's triple
Python loop with :class:`repro.phy.trellis.TrellisKernel` — NumPy array
operations over the batch and state dimensions, a Python loop only over
symbol periods.  This benchmark records the headline property on the
hardest shipped configuration (4-ASK over a memory-2 pulse, 16 trellis
states) and on the workload the coded-BER-over-waveform pipeline actually
runs — a :class:`repro.coding.ber.BerSimulator`-sized batch of sequences,
which the historical implementation could only detect one at a time:
**the vectorized kernel is at least 10x faster than the loop reference**,
bit-identical decisions included.  The max-log BCJR soft demodulator's
throughput on the same batch (the kernel behind
:class:`repro.phy.frontend.OneBitWaveformFrontend`) is reported alongside.
"""

import time

import numpy as np

from conftest import print_table, run_once
from repro.phy.channel_model import OversampledOneBitChannel
from repro.phy.modulation import AskConstellation
from repro.phy.pulse import ramp_pulse
from repro.phy.receiver import viterbi_loop_reference
from repro.phy.trellis import TrellisKernel

SEED = 0
N_SYMBOLS = 2_000
BATCH = 16  # the default BerSimulator batch size
SNR_DB = 25.0


def _measure():
    # 4-ASK over a memory-2 pulse: 16 states x 4 inputs = 64 transitions
    # per symbol for the reference loop.
    channel = OversampledOneBitChannel(pulse=ramp_pulse(5, 3),
                                       constellation=AskConstellation(4),
                                       snr_db=SNR_DB)
    assert channel.memory == 2 and channel.n_states == 16
    kernel = TrellisKernel(channel)
    signs = np.stack([channel.simulate(N_SYMBOLS, rng=SEED + row)[1]
                      for row in range(BATCH)])
    log_obs = channel.log_observation_probabilities(signs)

    def best_of(repeats, function):
        best = float("inf")
        value = None
        for _ in range(repeats):
            start = time.perf_counter()
            value = function()
            best = min(best, time.perf_counter() - start)
        return best, value

    reference_s, reference = best_of(
        2, lambda: np.stack([viterbi_loop_reference(channel, log_obs[row])
                             for row in range(BATCH)]))
    vectorized_s, vectorized = best_of(3, lambda: kernel.viterbi(log_obs))
    single_s, _ = best_of(3, lambda: kernel.viterbi(log_obs[0]))
    bcjr_s, _ = best_of(3, lambda: kernel.symbol_log_posteriors(log_obs))
    assert np.array_equal(vectorized, reference)
    return {
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "single_s": single_s,
        "bcjr_s": bcjr_s,
        "speedup": reference_s / vectorized_s,
    }


def test_vectorized_trellis_speedup_at_memory_two(benchmark):
    result = run_once(benchmark, _measure)
    print_table(
        "Trellis demod, 4-ASK / memory-2 / 16 states, "
        f"{BATCH} x {N_SYMBOLS} symbols (best-of-N)",
        "  kernel                        seconds",
        [f"  loop reference (x{BATCH})  {result['reference_s']:12.4f}",
         f"  vectorized batch        {result['vectorized_s']:12.4f}",
         f"  vectorized single seq   {result['single_s']:12.4f}",
         f"  max-log BCJR batch      {result['bcjr_s']:12.4f}",
         f"  speedup                 {result['speedup']:11.1f}x"])
    assert result["speedup"] >= 10.0, result
